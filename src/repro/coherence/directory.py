"""Inter-node directory protocol with refetch detection.

One directory entry exists per cached-anywhere block, conceptually stored
at the block's home node.  The protocol is *non-notifying*: nodes do not
inform the home when they silently drop a clean (read-only) copy.  The
home therefore still lists such nodes as sharers, which is exactly what
makes refetch detection cheap (paper, Section 3.1):

- A request from a node the directory believes already holds the block is
  a **refetch** — the node must have lost it to a capacity or conflict
  replacement.
- For read-write blocks the directory keeps the node's *was-held* status
  across a voluntary write-back (dirty eviction from the block cache), the
  "additional state" the paper describes.
- A coherence invalidation clears was-held, so misses caused by inter-node
  communication are never misclassified as refetches.

State layout
------------

The directory stores no data and, on the miss path, allocates none
either.  Sharing state lives in flat parallel columns indexed by a
per-block slot: ``owner`` is a node id (or :data:`NO_OWNER`) and
``sharers``/``was_held`` are **node bitmasks** — bit *n* set means node
*n* is in the set.  Set union is ``|=``, removal is ``&= ~bit``, and
membership is a shift-and-mask, so a request mutates three machine
integers instead of churning Python ``set`` objects.

Each request returns a single **packed outcome int** instead of an
allocated result object:

====================  ================================================
bit 0                 refetch — the requester previously held this
                      block and lost it to replacement, not coherence
bits 1..31            ``prev_owner + 1`` — node that held the block
                      exclusively before this request (0 means none);
                      it has been downgraded (read) or invalidated
                      (write) and the caller must fix its local caches
bits 32..             bitmask of nodes whose copies this request
                      invalidated (excludes the requester).  Writes
                      carry the displaced sharer set; *reads* carry a
                      non-zero mask only under the limited-pointer
                      "evict" overflow policy, where admitting a new
                      sharer can displace an existing pointer
====================  ================================================

Decode with :func:`out_refetch` / :func:`out_prev_owner` /
:func:`out_inval_mask` (or :func:`out_invalidated` for a tuple on cold
paths); the engine decodes inline with shifts and iterates sharers with
``mask & -mask`` bit tricks.  The frozen set-based transcription this
layout must stay observationally identical to lives in
:mod:`repro.sim.legacy` (see
``tests/property/test_memory_layout_differential.py``).

Scalable representations
------------------------

:class:`Directory` itself is the exact full-map: ``sharer_masks`` holds
one bit per node, always precisely the set of believed sharers.  Two
subclasses implement the classic space-bounded encodings, selected by
:func:`make_directory` from ``SystemConfig.directory``:

:class:`LimitedPointerDirectory`
    Dir_i-style: at most ``pointers`` sharers are tracked exactly.  On
    overflow, policy ``"broadcast"`` saturates the entry (the mask
    becomes all-nodes, so the next write broadcasts invalidations);
    policy ``"evict"`` invalidates the lowest-numbered existing sharer
    to free a pointer, reporting the victim in the read outcome's
    invalidation bits.
:class:`CoarseVectorDirectory`
    Coarse-vector: every sharer bit covers ``region_size`` consecutive
    nodes, so a reader admits its whole region and a write invalidates
    whole regions.

Both keep the **same column layout** (``slots``/``owners``/
``sharer_masks``/``held_masks``) with ``sharer_masks`` holding the
*effective* conservative mask — always a superset of the true sharer
set, never a subset, so over-invalidation is the only possible error
direction.  ``owners`` stays an exact pointer and ``held_masks`` stays
an exact per-node bit in every representation: was-held is the paper's
separate refetch-detection state, orthogonal to how sharers are
encoded.  The engine's read-only probes (owner check, sole-copy check)
therefore work unchanged; only the mutating requests differ, which is
why the engine routes them through the canonical methods for non-full-
map representations (see ``SimulationEngine._dir_inline``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError, ProtocolError

NO_OWNER = -1

#: packed-outcome layout (see module docstring)
OUT_OWNER_SHIFT = 1
OUT_OWNER_MASK = 0x7FFF_FFFF
OUT_INVAL_SHIFT = 32


def out_refetch(out: int) -> bool:
    """Refetch flag of a packed outcome."""
    return bool(out & 1)


def out_prev_owner(out: int) -> int:
    """Previous exclusive owner of a packed outcome (NO_OWNER if none)."""
    return ((out >> OUT_OWNER_SHIFT) & OUT_OWNER_MASK) - 1


def out_inval_mask(out: int) -> int:
    """Bitmask of nodes invalidated by the request."""
    return out >> OUT_INVAL_SHIFT


def bits_of(mask: int) -> List[int]:
    """Node ids set in ``mask``, ascending (cold-path helper)."""
    nodes = []
    while mask:
        low = mask & -mask
        nodes.append(low.bit_length() - 1)
        mask ^= low
    return nodes


def out_invalidated(out: int) -> Tuple[int, ...]:
    """Invalidated node ids of a packed outcome, ascending."""
    return tuple(bits_of(out >> OUT_INVAL_SHIFT))


class Directory:
    """All directory entries for the machine, keyed by block number.

    The home-node association of blocks is kept by the placement map, not
    here; the directory only needs entries for blocks that have been
    requested at least once.  ``slots`` maps a block to its index in the
    three parallel columns; entries are never deleted (a flush merely
    clears the node's bits), so slots are stable for a run.
    """

    __slots__ = ("slots", "owners", "sharer_masks", "held_masks")

    def __init__(self) -> None:
        # Public columns on purpose (same contract as L1Cache.block_at):
        # the engine probes owner/sharer state directly on its miss
        # path, and all four containers keep their identity for the
        # directory's lifetime (reset() clears them in place).
        self.slots: Dict[int, int] = {}
        self.owners: List[int] = []
        self.sharer_masks: List[int] = []
        self.held_masks: List[int] = []

    def _new_slot(self, block: int) -> int:
        s = len(self.owners)
        self.slots[block] = s
        self.owners.append(NO_OWNER)
        self.sharer_masks.append(0)
        self.held_masks.append(0)
        return s

    def __len__(self) -> int:
        return len(self.slots)

    def __contains__(self, block: int) -> bool:
        return block in self.slots

    def reset(self) -> None:
        """Forget every entry (fresh-machine state for a re-run)."""
        self.slots.clear()
        del self.owners[:]
        del self.sharer_masks[:]
        del self.held_masks[:]

    # ------------------------------------------------------------------
    # requests from remote nodes (and from the home itself)
    # ------------------------------------------------------------------

    def read_request(self, block: int, node: int) -> int:
        """Node ``node`` asks the home for a readable copy of ``block``.

        A request from a node still marked was-held is a refetch — also
        when the home thought the node *owned* the block (silent
        eviction of an exclusive-clean line, or an L1/block-cache race).
        """
        s = self.slots.get(block)
        if s is None:
            s = self._new_slot(block)
        owner = self.owners[s]
        out = (self.held_masks[s] >> node) & 1
        if owner >= 0 and owner != node:
            # Owner is downgraded to a shared copy; data returns home.
            out |= (owner + 1) << OUT_OWNER_SHIFT
            self.owners[s] = NO_OWNER
        elif owner == node:
            self.owners[s] = NO_OWNER
        bit = 1 << node
        self.sharer_masks[s] |= bit
        self.held_masks[s] |= bit
        return out

    def write_request(self, block: int, node: int, upgrade: bool = False) -> int:
        """Node ``node`` asks for exclusive ownership of ``block``.

        ``upgrade`` marks requests from a node that still holds a valid
        read-only copy: a distinguishable message type in real
        protocols, never a refetch (the node lost nothing to
        replacement — it only needs write permission).
        """
        s = self.slots.get(block)
        if s is None:
            s = self._new_slot(block)
        owner = self.owners[s]
        bit = 1 << node
        out = 0
        if not upgrade and owner != node:
            out = (self.held_masks[s] >> node) & 1
        if owner >= 0 and owner != node:
            out |= (owner + 1) << OUT_OWNER_SHIFT
        # Coherence invalidation clears was-held for every displaced
        # node: their next miss is a communication miss, not a refetch.
        out |= (self.sharer_masks[s] & ~bit) << OUT_INVAL_SHIFT
        self.sharer_masks[s] = bit
        self.held_masks[s] = bit
        self.owners[s] = node
        return out

    # ------------------------------------------------------------------
    # home-node accesses to its own memory
    #
    # Local accesses never travel to a "home" (they are at home already),
    # so they are never refetches; they only interact with the directory
    # when a remote node holds the block exclusively (read) or holds any
    # copy (write).
    # ------------------------------------------------------------------

    def home_read_access(self, block: int, home: int) -> int:
        """The home node reads a block of its own memory."""
        s = self.slots.get(block)
        if s is None:
            return 0
        owner = self.owners[s]
        if owner < 0 or owner == home:
            return 0
        self.owners[s] = NO_OWNER
        return (owner + 1) << OUT_OWNER_SHIFT

    def home_write_access(self, block: int, home: int) -> int:
        """The home node writes a block of its own memory.

        All remote copies must be invalidated (and cleared from
        was-held, so their next miss counts as coherence).
        """
        s = self.slots.get(block)
        if s is None:
            return 0
        owner = self.owners[s]
        out = 0
        if owner >= 0 and owner != home:
            out = (owner + 1) << OUT_OWNER_SHIFT
        out |= (self.sharer_masks[s] & ~(1 << home)) << OUT_INVAL_SHIFT
        self.owners[s] = NO_OWNER
        self.sharer_masks[s] = 0
        self.held_masks[s] = 0
        return out

    # ------------------------------------------------------------------
    # notifications from nodes
    # ------------------------------------------------------------------

    def writeback(self, block: int, node: int) -> None:
        """Voluntary write-back of a dirty block (block-cache eviction).

        The node returns the data but — per the paper's refetch-detection
        scheme — remains in ``was_held``: if it asks again without an
        intervening coherence invalidation, that request is a refetch.
        """
        s = self.slots.get(block)
        if s is None:
            raise ProtocolError(f"writeback of untracked block {block}")
        if self.owners[s] == node:
            self.owners[s] = NO_OWNER
        # Node keeps its sharer/was_held bits (non-notifying protocol).

    def flush(self, block: int, node: int) -> None:
        """Explicit flush-and-forget (S-COMA replacement / page unmap).

        Unlike :meth:`writeback`, the node relinquishes the block
        entirely and the home forgets it ever held it.
        """
        s = self.slots.get(block)
        if s is None:
            return
        if self.owners[s] == node:
            self.owners[s] = NO_OWNER
        keep = ~(1 << node)
        self.sharer_masks[s] &= keep
        self.held_masks[s] &= keep

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and the harness)
    # ------------------------------------------------------------------

    def owner_of(self, block: int) -> int:
        s = self.slots.get(block)
        return self.owners[s] if s is not None else NO_OWNER

    def sharers_mask(self, block: int) -> int:
        """Sharer bitmask (the engine's no-allocation sole-copy probe)."""
        s = self.slots.get(block)
        return self.sharer_masks[s] if s is not None else 0

    def was_held_mask(self, block: int) -> int:
        s = self.slots.get(block)
        return self.held_masks[s] if s is not None else 0

    def sharers_of(self, block: int) -> frozenset:
        return frozenset(bits_of(self.sharers_mask(block)))

    def was_held_by(self, block: int, node: int) -> bool:
        return bool((self.was_held_mask(block) >> node) & 1)

    def check(self, block: int) -> None:
        """Raise ProtocolError if ``block``'s invariants are violated."""
        s = self.slots.get(block)
        if s is None:
            return
        owner = self.owners[s]
        if owner != NO_OWNER:
            if not (self.sharer_masks[s] >> owner) & 1:
                raise ProtocolError(f"owner {owner} must be in sharers")
            if self.sharer_masks[s] != 1 << owner:
                raise ProtocolError(
                    f"exclusive owner {owner} but "
                    f"sharers={bits_of(self.sharer_masks[s])}"
                )
            if not (self.held_masks[s] >> owner) & 1:
                raise ProtocolError("owner must be in was_held")


class LimitedPointerDirectory(Directory):
    """Dir_i-style limited-pointer directory.

    Up to ``pointers`` sharers per block are tracked exactly (the mask
    simply never grows past that many bits).  Admitting a sharer beyond
    capacity triggers the overflow policy:

    ``"broadcast"``
        The entry saturates: ``modes[s]`` flips to 1 and the sharer
        mask becomes all-nodes, so the next write-ownership grant
        invalidates every other node.  A write (or home write)
        collapses the entry back to the exact single-sharer state.
    ``"evict"``
        The entry stays exact: the lowest-numbered existing sharer is
        displaced to free its pointer.  The victim is reported in the
        *read* outcome's invalidation bits (the one case where a read
        carries them) and loses its was-held status — its next miss is
        a coherence miss, never a refetch, exactly as for a
        write-driven invalidation.

    With ``pointers >= nodes`` overflow never fires and every operation
    is bit-identical to the full-map base class.
    """

    __slots__ = ("nodes", "pointers", "evict_on_overflow", "all_mask", "modes")

    def __init__(
        self, nodes: int, pointers: int = 4, overflow: str = "broadcast"
    ) -> None:
        super().__init__()
        if nodes < 1:
            raise ConfigurationError("directory needs at least one node")
        if pointers < 1:
            raise ConfigurationError("directory pointers must be positive")
        if overflow not in ("broadcast", "evict"):
            raise ConfigurationError(
                f"unknown overflow policy {overflow!r}; "
                "expected 'broadcast' or 'evict'"
            )
        self.nodes = nodes
        self.pointers = pointers
        self.evict_on_overflow = overflow == "evict"
        self.all_mask = (1 << nodes) - 1
        #: per-slot 0 = exact pointer set, 1 = overflowed to broadcast.
        self.modes: List[int] = []

    def _new_slot(self, block: int) -> int:
        s = super()._new_slot(block)
        self.modes.append(0)
        return s

    def reset(self) -> None:
        super().reset()
        del self.modes[:]

    def read_request(self, block: int, node: int) -> int:
        s = self.slots.get(block)
        if s is None:
            s = self._new_slot(block)
        owner = self.owners[s]
        out = (self.held_masks[s] >> node) & 1
        if owner >= 0 and owner != node:
            out |= (owner + 1) << OUT_OWNER_SHIFT
            self.owners[s] = NO_OWNER
        elif owner == node:
            self.owners[s] = NO_OWNER
        bit = 1 << node
        self.held_masks[s] |= bit
        mask = self.sharer_masks[s]
        if mask & bit:
            # Already listed (saturated entries list everyone).
            return out
        mask |= bit
        if mask.bit_count() > self.pointers:
            if self.evict_on_overflow:
                # Deterministic pointer replacement: displace the
                # lowest-numbered sharer that is not the requester.
                victims = mask & ~bit
                victim = victims & -victims
                mask ^= victim
                self.held_masks[s] &= ~victim
                out |= victim << OUT_INVAL_SHIFT
            else:
                self.modes[s] = 1
                mask = self.all_mask
        self.sharer_masks[s] = mask
        return out

    def write_request(self, block: int, node: int, upgrade: bool = False) -> int:
        out = Directory.write_request(self, block, node, upgrade=upgrade)
        # Ownership collapses the entry to one exact sharer.
        self.modes[self.slots[block]] = 0
        return out

    def home_write_access(self, block: int, home: int) -> int:
        out = Directory.home_write_access(self, block, home)
        s = self.slots.get(block)
        if s is not None:
            self.modes[s] = 0
        return out

    def flush(self, block: int, node: int) -> None:
        s = self.slots.get(block)
        if s is None:
            return
        if self.owners[s] == node:
            self.owners[s] = NO_OWNER
        self.held_masks[s] &= ~(1 << node)
        if not self.modes[s]:
            self.sharer_masks[s] &= ~(1 << node)
        # A saturated entry has no pointer to remove: the mask stays
        # all-nodes (conservative) until a write collapses it.

    def check(self, block: int) -> None:
        s = self.slots.get(block)
        if s is None:
            return
        mask = self.sharer_masks[s]
        if mask & ~self.all_mask:
            raise ProtocolError(
                f"sharer mask {mask:#x} has bits beyond {self.nodes} nodes"
            )
        if self.modes[s]:
            if mask != self.all_mask:
                raise ProtocolError(
                    "overflowed (broadcast) entry must list every node, "
                    f"got {bits_of(mask)}"
                )
        elif mask.bit_count() > self.pointers:
            raise ProtocolError(
                f"{mask.bit_count()} sharers exceed "
                f"{self.pointers} hardware pointers"
            )
        if self.held_masks[s] & ~mask:
            raise ProtocolError("was_held must be a subset of sharers")
        owner = self.owners[s]
        if owner != NO_OWNER:
            if self.modes[s]:
                raise ProtocolError("exclusive owner in an overflowed entry")
            if mask != 1 << owner:
                raise ProtocolError(
                    f"exclusive owner {owner} but sharers={bits_of(mask)}"
                )
            if not (self.held_masks[s] >> owner) & 1:
                raise ProtocolError("owner must be in was_held")


class CoarseVectorDirectory(Directory):
    """Coarse-vector directory: one sharer bit per ``region_size`` nodes.

    The stored mask is always region-aligned — a union of whole
    regions — so admitting one reader admits its region-mates as
    presumed sharers and a write-ownership grant invalidates whole
    regions.  ``owners`` stays an exact node pointer (a dirty block has
    exactly one identified owner in hardware too), and ``held_masks``
    stays exact per node.

    A flush cannot clear the flushing node's region bit (region-mates
    may still genuinely share the block), except when the node's region
    contains only itself — which is what makes ``region_size == 1``
    bit-identical to the full-map base class.
    """

    __slots__ = ("nodes", "region_size", "all_mask", "region_masks")

    def __init__(self, nodes: int, region_size: int = 4) -> None:
        super().__init__()
        if nodes < 1:
            raise ConfigurationError("directory needs at least one node")
        if region_size < 1:
            raise ConfigurationError("directory region_size must be positive")
        self.nodes = nodes
        self.region_size = region_size
        self.all_mask = (1 << nodes) - 1
        full = (1 << region_size) - 1
        #: node -> the mask of its whole region, clipped to real nodes.
        self.region_masks: List[int] = [
            (full << (n - n % region_size)) & self.all_mask
            for n in range(nodes)
        ]

    def expand(self, mask: int) -> int:
        """Region closure of ``mask`` (cold-path/check helper)."""
        out = 0
        while mask:
            low = mask & -mask
            out |= self.region_masks[low.bit_length() - 1]
            mask &= ~out
        return out

    def read_request(self, block: int, node: int) -> int:
        s = self.slots.get(block)
        if s is None:
            s = self._new_slot(block)
        owner = self.owners[s]
        out = (self.held_masks[s] >> node) & 1
        if owner >= 0 and owner != node:
            out |= (owner + 1) << OUT_OWNER_SHIFT
            self.owners[s] = NO_OWNER
        elif owner == node:
            self.owners[s] = NO_OWNER
        self.sharer_masks[s] |= self.region_masks[node]
        self.held_masks[s] |= 1 << node
        return out

    def write_request(self, block: int, node: int, upgrade: bool = False) -> int:
        out = Directory.write_request(self, block, node, upgrade=upgrade)
        # The writer's region is the finest grain the vector can hold.
        self.sharer_masks[self.slots[block]] = self.region_masks[node]
        return out

    def flush(self, block: int, node: int) -> None:
        s = self.slots.get(block)
        if s is None:
            return
        if self.owners[s] == node:
            self.owners[s] = NO_OWNER
        bit = 1 << node
        self.held_masks[s] &= ~bit
        if self.region_masks[node] == bit:
            # Single-node region: removing it keeps the mask
            # region-aligned and loses no information.
            self.sharer_masks[s] &= ~bit

    def check(self, block: int) -> None:
        s = self.slots.get(block)
        if s is None:
            return
        mask = self.sharer_masks[s]
        if mask & ~self.all_mask:
            raise ProtocolError(
                f"sharer mask {mask:#x} has bits beyond {self.nodes} nodes"
            )
        if mask != self.expand(mask):
            raise ProtocolError(
                f"sharer mask {bits_of(mask)} is not a union of "
                f"{self.region_size}-node regions"
            )
        if self.held_masks[s] & ~mask:
            raise ProtocolError("was_held must be a subset of sharers")
        owner = self.owners[s]
        if owner != NO_OWNER:
            if not (mask >> owner) & 1:
                raise ProtocolError(f"owner {owner} must be in sharers")
            if mask != self.region_masks[owner]:
                raise ProtocolError(
                    f"exclusive owner {owner} but sharers={bits_of(mask)} "
                    "is not exactly the owner's region"
                )
            if not (self.held_masks[s] >> owner) & 1:
                raise ProtocolError("owner must be in was_held")


def make_directory(params, nodes: int) -> Directory:
    """Build the directory variant a ``DirectoryParams`` describes.

    ``params`` may be ``None`` (exact full-map) or any object with
    ``representation`` / ``pointers`` / ``overflow`` / ``region_size``
    attributes; keeping this duck-typed avoids importing
    :mod:`repro.common.params` (which must stay import-cycle-free).
    """
    if params is None:
        return Directory()
    rep = params.representation
    if rep == "fullmap":
        return Directory()
    if rep == "limited":
        return LimitedPointerDirectory(nodes, params.pointers, params.overflow)
    if rep == "coarse":
        return CoarseVectorDirectory(nodes, params.region_size)
    raise ConfigurationError(f"unknown directory representation {rep!r}")
