"""Inter-node directory protocol with refetch detection.

One directory entry exists per cached-anywhere block, conceptually stored
at the block's home node.  The protocol is *non-notifying*: nodes do not
inform the home when they silently drop a clean (read-only) copy.  The
home therefore still lists such nodes as sharers, which is exactly what
makes refetch detection cheap (paper, Section 3.1):

- A request from a node the directory believes already holds the block is
  a **refetch** — the node must have lost it to a capacity or conflict
  replacement.
- For read-write blocks the directory keeps the node's *was-held* status
  across a voluntary write-back (dirty eviction from the block cache), the
  "additional state" the paper describes.
- A coherence invalidation clears was-held, so misses caused by inter-node
  communication are never misclassified as refetches.

The directory stores no data; it answers each request with a
:class:`FetchOutcome` telling the caller (the simulation engine) which
nodes must be invalidated or downgraded and whether the request was a
refetch.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.errors import ProtocolError

NO_OWNER = -1


class DirectoryEntry:
    """Sharing state for one block.

    ``owner`` is the node holding the block exclusively (or NO_OWNER);
    ``sharers`` are nodes the home believes hold a copy; ``was_held``
    are nodes that have been handed the data and have not been
    coherence-invalidated since — the refetch-detection set.
    """

    __slots__ = ("owner", "sharers", "was_held")

    def __init__(self) -> None:
        self.owner: int = NO_OWNER
        self.sharers: set = set()
        self.was_held: set = set()

    def check(self) -> None:
        """Raise ProtocolError if internal invariants are violated."""
        if self.owner != NO_OWNER:
            if self.sharers != {self.owner}:
                raise ProtocolError(
                    f"exclusive owner {self.owner} but sharers={self.sharers}"
                )
            if self.owner not in self.was_held:
                raise ProtocolError("owner must be in was_held")


class FetchOutcome:
    """Result of a directory request.

    Attributes
    ----------
    refetch:
        The requester previously held this block and lost it to
        replacement (capacity/conflict), not coherence.
    prev_owner:
        Node that held the block exclusively before this request
        (NO_OWNER if none); it has been downgraded (read) or invalidated
        (write) and the caller must update that node's local caches.
    invalidated:
        Nodes whose copies were invalidated by this request (write
        requests only; excludes the requester).
    """

    __slots__ = ("refetch", "prev_owner", "invalidated")

    def __init__(
        self,
        refetch: bool,
        prev_owner: int = NO_OWNER,
        invalidated: Tuple[int, ...] = (),
    ) -> None:
        self.refetch = refetch
        self.prev_owner = prev_owner
        self.invalidated = invalidated


class Directory:
    """All directory entries for the machine, keyed by block number.

    The home-node association of blocks is kept by the placement map, not
    here; the directory only needs entries for blocks that have been
    requested at least once.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, block: int) -> DirectoryEntry:
        e = self._entries.get(block)
        if e is None:
            e = DirectoryEntry()
            self._entries[block] = e
        return e

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        """Entry for ``block`` if one exists (no allocation)."""
        return self._entries.get(block)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # requests from remote nodes (and from the home itself)
    # ------------------------------------------------------------------

    def read_request(self, block: int, node: int) -> FetchOutcome:
        """Node ``node`` asks the home for a readable copy of ``block``."""
        e = self.entry(block)
        refetch = node in e.was_held and node not in (e.owner,)
        prev_owner = NO_OWNER
        if e.owner != NO_OWNER and e.owner != node:
            # Owner is downgraded to a shared copy; data returns home.
            prev_owner = e.owner
            e.owner = NO_OWNER
        elif e.owner == node:
            # The home thinks we own it but we are asking again: the node
            # lost the line without telling us (silent eviction of a line
            # it held exclusively clean, or an L1/block-cache race).
            refetch = node in e.was_held
            e.owner = NO_OWNER
        e.sharers.add(node)
        e.was_held.add(node)
        return FetchOutcome(refetch, prev_owner=prev_owner)

    def write_request(self, block: int, node: int, upgrade: bool = False) -> FetchOutcome:
        """Node ``node`` asks for exclusive ownership of ``block``.

        ``upgrade`` marks requests from a node that still holds a valid
        read-only copy: a distinguishable message type in real
        protocols, never a refetch (the node lost nothing to
        replacement — it only needs write permission).
        """
        e = self.entry(block)
        refetch = node in e.was_held and e.owner != node and not upgrade
        prev_owner = e.owner if e.owner not in (NO_OWNER, node) else NO_OWNER
        invalidated = tuple(n for n in e.sharers if n != node)
        # Coherence invalidation clears was-held for every displaced node:
        # their next miss is a communication miss, not a refetch.
        e.sharers = {node}
        e.was_held = {node}
        e.owner = node
        return FetchOutcome(refetch, prev_owner=prev_owner, invalidated=invalidated)

    # ------------------------------------------------------------------
    # home-node accesses to its own memory
    #
    # Local accesses never travel to a "home" (they are at home already),
    # so they are never refetches; they only interact with the directory
    # when a remote node holds the block exclusively (read) or holds any
    # copy (write).
    # ------------------------------------------------------------------

    def home_read_access(self, block: int, home: int) -> FetchOutcome:
        """The home node reads a block of its own memory."""
        e = self._entries.get(block)
        if e is None or e.owner in (NO_OWNER, home):
            return FetchOutcome(False)
        prev_owner = e.owner
        e.owner = NO_OWNER
        return FetchOutcome(False, prev_owner=prev_owner)

    def home_write_access(self, block: int, home: int) -> FetchOutcome:
        """The home node writes a block of its own memory.

        All remote copies must be invalidated (and cleared from
        was-held, so their next miss counts as coherence).
        """
        e = self._entries.get(block)
        if e is None:
            return FetchOutcome(False)
        prev_owner = e.owner if e.owner not in (NO_OWNER, home) else NO_OWNER
        invalidated = tuple(n for n in e.sharers if n != home)
        e.owner = NO_OWNER
        e.sharers = set()
        e.was_held = set()
        return FetchOutcome(False, prev_owner=prev_owner, invalidated=invalidated)

    # ------------------------------------------------------------------
    # notifications from nodes
    # ------------------------------------------------------------------

    def writeback(self, block: int, node: int) -> None:
        """Voluntary write-back of a dirty block (block-cache eviction).

        The node returns the data but — per the paper's refetch-detection
        scheme — remains in ``was_held``: if it asks again without an
        intervening coherence invalidation, that request is a refetch.
        """
        e = self._entries.get(block)
        if e is None:
            raise ProtocolError(f"writeback of untracked block {block}")
        if e.owner == node:
            e.owner = NO_OWNER
        # Node keeps its sharer/was_held status (non-notifying protocol).

    def flush(self, block: int, node: int) -> None:
        """Explicit flush-and-forget (S-COMA replacement / page unmap).

        Unlike :meth:`writeback`, the node relinquishes the block
        entirely and the home forgets it ever held it.
        """
        e = self._entries.get(block)
        if e is None:
            return
        if e.owner == node:
            e.owner = NO_OWNER
        e.sharers.discard(node)
        e.was_held.discard(node)

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and the harness)
    # ------------------------------------------------------------------

    def owner_of(self, block: int) -> int:
        e = self._entries.get(block)
        return e.owner if e is not None else NO_OWNER

    def sharers_of(self, block: int) -> frozenset:
        e = self._entries.get(block)
        return frozenset(e.sharers) if e is not None else frozenset()

    def was_held_by(self, block: int, node: int) -> bool:
        e = self._entries.get(block)
        return e is not None and node in e.was_held
