"""Inter-node directory protocol with refetch detection.

One directory entry exists per cached-anywhere block, conceptually stored
at the block's home node.  The protocol is *non-notifying*: nodes do not
inform the home when they silently drop a clean (read-only) copy.  The
home therefore still lists such nodes as sharers, which is exactly what
makes refetch detection cheap (paper, Section 3.1):

- A request from a node the directory believes already holds the block is
  a **refetch** — the node must have lost it to a capacity or conflict
  replacement.
- For read-write blocks the directory keeps the node's *was-held* status
  across a voluntary write-back (dirty eviction from the block cache), the
  "additional state" the paper describes.
- A coherence invalidation clears was-held, so misses caused by inter-node
  communication are never misclassified as refetches.

State layout
------------

The directory stores no data and, on the miss path, allocates none
either.  Sharing state lives in flat parallel columns indexed by a
per-block slot: ``owner`` is a node id (or :data:`NO_OWNER`) and
``sharers``/``was_held`` are **node bitmasks** — bit *n* set means node
*n* is in the set.  Set union is ``|=``, removal is ``&= ~bit``, and
membership is a shift-and-mask, so a request mutates three machine
integers instead of churning Python ``set`` objects.

Each request returns a single **packed outcome int** instead of an
allocated result object:

====================  ================================================
bit 0                 refetch — the requester previously held this
                      block and lost it to replacement, not coherence
bits 1..31            ``prev_owner + 1`` — node that held the block
                      exclusively before this request (0 means none);
                      it has been downgraded (read) or invalidated
                      (write) and the caller must fix its local caches
bits 32..             bitmask of nodes whose copies this request
                      invalidated (write requests only; excludes the
                      requester)
====================  ================================================

Decode with :func:`out_refetch` / :func:`out_prev_owner` /
:func:`out_inval_mask` (or :func:`out_invalidated` for a tuple on cold
paths); the engine decodes inline with shifts and iterates sharers with
``mask & -mask`` bit tricks.  The frozen set-based transcription this
layout must stay observationally identical to lives in
:mod:`repro.sim.legacy` (see
``tests/property/test_memory_layout_differential.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ProtocolError

NO_OWNER = -1

#: packed-outcome layout (see module docstring)
OUT_OWNER_SHIFT = 1
OUT_OWNER_MASK = 0x7FFF_FFFF
OUT_INVAL_SHIFT = 32


def out_refetch(out: int) -> bool:
    """Refetch flag of a packed outcome."""
    return bool(out & 1)


def out_prev_owner(out: int) -> int:
    """Previous exclusive owner of a packed outcome (NO_OWNER if none)."""
    return ((out >> OUT_OWNER_SHIFT) & OUT_OWNER_MASK) - 1


def out_inval_mask(out: int) -> int:
    """Bitmask of nodes invalidated by the request."""
    return out >> OUT_INVAL_SHIFT


def bits_of(mask: int) -> List[int]:
    """Node ids set in ``mask``, ascending (cold-path helper)."""
    nodes = []
    while mask:
        low = mask & -mask
        nodes.append(low.bit_length() - 1)
        mask ^= low
    return nodes


def out_invalidated(out: int) -> Tuple[int, ...]:
    """Invalidated node ids of a packed outcome, ascending."""
    return tuple(bits_of(out >> OUT_INVAL_SHIFT))


class Directory:
    """All directory entries for the machine, keyed by block number.

    The home-node association of blocks is kept by the placement map, not
    here; the directory only needs entries for blocks that have been
    requested at least once.  ``slots`` maps a block to its index in the
    three parallel columns; entries are never deleted (a flush merely
    clears the node's bits), so slots are stable for a run.
    """

    __slots__ = ("slots", "owners", "sharer_masks", "held_masks")

    def __init__(self) -> None:
        # Public columns on purpose (same contract as L1Cache.block_at):
        # the engine probes owner/sharer state directly on its miss
        # path, and all four containers keep their identity for the
        # directory's lifetime (reset() clears them in place).
        self.slots: Dict[int, int] = {}
        self.owners: List[int] = []
        self.sharer_masks: List[int] = []
        self.held_masks: List[int] = []

    def _new_slot(self, block: int) -> int:
        s = len(self.owners)
        self.slots[block] = s
        self.owners.append(NO_OWNER)
        self.sharer_masks.append(0)
        self.held_masks.append(0)
        return s

    def __len__(self) -> int:
        return len(self.slots)

    def __contains__(self, block: int) -> bool:
        return block in self.slots

    def reset(self) -> None:
        """Forget every entry (fresh-machine state for a re-run)."""
        self.slots.clear()
        del self.owners[:]
        del self.sharer_masks[:]
        del self.held_masks[:]

    # ------------------------------------------------------------------
    # requests from remote nodes (and from the home itself)
    # ------------------------------------------------------------------

    def read_request(self, block: int, node: int) -> int:
        """Node ``node`` asks the home for a readable copy of ``block``.

        A request from a node still marked was-held is a refetch — also
        when the home thought the node *owned* the block (silent
        eviction of an exclusive-clean line, or an L1/block-cache race).
        """
        s = self.slots.get(block)
        if s is None:
            s = self._new_slot(block)
        owner = self.owners[s]
        out = (self.held_masks[s] >> node) & 1
        if owner >= 0 and owner != node:
            # Owner is downgraded to a shared copy; data returns home.
            out |= (owner + 1) << OUT_OWNER_SHIFT
            self.owners[s] = NO_OWNER
        elif owner == node:
            self.owners[s] = NO_OWNER
        bit = 1 << node
        self.sharer_masks[s] |= bit
        self.held_masks[s] |= bit
        return out

    def write_request(self, block: int, node: int, upgrade: bool = False) -> int:
        """Node ``node`` asks for exclusive ownership of ``block``.

        ``upgrade`` marks requests from a node that still holds a valid
        read-only copy: a distinguishable message type in real
        protocols, never a refetch (the node lost nothing to
        replacement — it only needs write permission).
        """
        s = self.slots.get(block)
        if s is None:
            s = self._new_slot(block)
        owner = self.owners[s]
        bit = 1 << node
        out = 0
        if not upgrade and owner != node:
            out = (self.held_masks[s] >> node) & 1
        if owner >= 0 and owner != node:
            out |= (owner + 1) << OUT_OWNER_SHIFT
        # Coherence invalidation clears was-held for every displaced
        # node: their next miss is a communication miss, not a refetch.
        out |= (self.sharer_masks[s] & ~bit) << OUT_INVAL_SHIFT
        self.sharer_masks[s] = bit
        self.held_masks[s] = bit
        self.owners[s] = node
        return out

    # ------------------------------------------------------------------
    # home-node accesses to its own memory
    #
    # Local accesses never travel to a "home" (they are at home already),
    # so they are never refetches; they only interact with the directory
    # when a remote node holds the block exclusively (read) or holds any
    # copy (write).
    # ------------------------------------------------------------------

    def home_read_access(self, block: int, home: int) -> int:
        """The home node reads a block of its own memory."""
        s = self.slots.get(block)
        if s is None:
            return 0
        owner = self.owners[s]
        if owner < 0 or owner == home:
            return 0
        self.owners[s] = NO_OWNER
        return (owner + 1) << OUT_OWNER_SHIFT

    def home_write_access(self, block: int, home: int) -> int:
        """The home node writes a block of its own memory.

        All remote copies must be invalidated (and cleared from
        was-held, so their next miss counts as coherence).
        """
        s = self.slots.get(block)
        if s is None:
            return 0
        owner = self.owners[s]
        out = 0
        if owner >= 0 and owner != home:
            out = (owner + 1) << OUT_OWNER_SHIFT
        out |= (self.sharer_masks[s] & ~(1 << home)) << OUT_INVAL_SHIFT
        self.owners[s] = NO_OWNER
        self.sharer_masks[s] = 0
        self.held_masks[s] = 0
        return out

    # ------------------------------------------------------------------
    # notifications from nodes
    # ------------------------------------------------------------------

    def writeback(self, block: int, node: int) -> None:
        """Voluntary write-back of a dirty block (block-cache eviction).

        The node returns the data but — per the paper's refetch-detection
        scheme — remains in ``was_held``: if it asks again without an
        intervening coherence invalidation, that request is a refetch.
        """
        s = self.slots.get(block)
        if s is None:
            raise ProtocolError(f"writeback of untracked block {block}")
        if self.owners[s] == node:
            self.owners[s] = NO_OWNER
        # Node keeps its sharer/was_held bits (non-notifying protocol).

    def flush(self, block: int, node: int) -> None:
        """Explicit flush-and-forget (S-COMA replacement / page unmap).

        Unlike :meth:`writeback`, the node relinquishes the block
        entirely and the home forgets it ever held it.
        """
        s = self.slots.get(block)
        if s is None:
            return
        if self.owners[s] == node:
            self.owners[s] = NO_OWNER
        keep = ~(1 << node)
        self.sharer_masks[s] &= keep
        self.held_masks[s] &= keep

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and the harness)
    # ------------------------------------------------------------------

    def owner_of(self, block: int) -> int:
        s = self.slots.get(block)
        return self.owners[s] if s is not None else NO_OWNER

    def sharers_mask(self, block: int) -> int:
        """Sharer bitmask (the engine's no-allocation sole-copy probe)."""
        s = self.slots.get(block)
        return self.sharer_masks[s] if s is not None else 0

    def was_held_mask(self, block: int) -> int:
        s = self.slots.get(block)
        return self.held_masks[s] if s is not None else 0

    def sharers_of(self, block: int) -> frozenset:
        return frozenset(bits_of(self.sharers_mask(block)))

    def was_held_by(self, block: int, node: int) -> bool:
        return bool((self.was_held_mask(block) >> node) & 1)

    def check(self, block: int) -> None:
        """Raise ProtocolError if ``block``'s invariants are violated."""
        s = self.slots.get(block)
        if s is None:
            return
        owner = self.owners[s]
        if owner != NO_OWNER:
            if self.sharer_masks[s] != 1 << owner:
                raise ProtocolError(
                    f"exclusive owner {owner} but "
                    f"sharers={bits_of(self.sharer_masks[s])}"
                )
            if not (self.held_masks[s] >> owner) & 1:
                raise ProtocolError("owner must be in was_held")
