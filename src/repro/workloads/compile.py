"""Compiled (columnar) programs: the shared trace artifact.

A :class:`CompiledProgram` is the array-backed form of a workload: one
packed ``array('q')`` column per CPU (see :mod:`repro.common.records`
for the word layout), O(1) access/barrier counters maintained by the
builder, and a memoized first-touch placement map.  It is what the
registry caches, what the engine consumes natively, and what the
executor ships to worker processes — one generation pass serves every
protocol in a sweep.

The legacy object API survives as a lazy view: ``program.traces`` is a
list of :class:`repro.common.records.TraceView`, which decode words to
:class:`Access`/:class:`Barrier` on demand.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.addressing import AddressSpace
from repro.common.errors import TraceError
from repro.common.params import MachineParams
from repro.common.records import (
    ADDR_SHIFT,
    TraceView,
    as_columns,
    column_profile,
    validate_barrier_sequences,
)


class CompiledProgram:
    """A complete multiprocessor workload in columnar form.

    Construction paths:

    - ``CompiledProgram(name, columns=...)`` — adopt packed columns.
      Unless the trusted per-column ``access_counts`` and ``barrier_ids``
      are also supplied (the :class:`~repro.workloads.base.TraceBuilder`
      maintains them incrementally), the columns are scanned once to
      derive the counters and to validate that every CPU crosses the
      same barrier sequence.
    - ``CompiledProgram(name, traces=...)`` — compile legacy per-CPU
      Access/Barrier sequences (always validated).
    """

    def __init__(
        self,
        name: str,
        traces: Optional[Sequence[Sequence[object]]] = None,
        description: str = "",
        paper_input: str = "",
        scaled_input: str = "",
        metadata: Optional[Dict[str, object]] = None,
        *,
        columns: Optional[List[array]] = None,
        access_counts: Optional[List[int]] = None,
        barrier_ids: Optional[List[int]] = None,
    ) -> None:
        if columns is None:
            if traces is None:
                raise TraceError(f"program {name!r} needs traces or columns")
            columns, _ = as_columns(traces)
            access_counts = None  # never trust counters for foreign input
            barrier_ids = None
        self.name = name
        self.columns: List[array] = list(columns)
        self.description = description
        self.paper_input = paper_input
        self.scaled_input = scaled_input
        self.metadata: Dict[str, object] = dict(metadata or {})
        if access_counts is None or barrier_ids is None:
            barrier_ids = validate_barrier_sequences(self.columns)
            barriers_per_cpu = len(barrier_ids)
            access_counts = [len(c) - barriers_per_cpu for c in self.columns]
        self.access_counts: List[int] = list(access_counts)
        self.barrier_ids: List[int] = list(barrier_ids)
        self._total_accesses = sum(self.access_counts)
        self._views: Optional[List[TraceView]] = None
        #: (nodes, cpus_per_node, page_shift) -> first-touch page->home map
        self._homes_cache: Dict[Tuple[int, int, int], Dict[int, int]] = {}
        self._profile: Optional[List[Tuple[int, int, int]]] = None

    # -- identity ------------------------------------------------------

    @property
    def cpu_count(self) -> int:
        return len(self.columns)

    @property
    def total_accesses(self) -> int:
        """Data references across all CPUs (O(1): builder-maintained)."""
        return self._total_accesses

    @property
    def barrier_count(self) -> int:
        """Global barriers the program crosses (O(1))."""
        return len(self.barrier_ids)

    @property
    def nbytes(self) -> int:
        """Size of the packed trace buffers in bytes."""
        return sum(len(c) * c.itemsize for c in self.columns)

    @property
    def traces(self) -> List[TraceView]:
        """Legacy object view: one lazy Access/Barrier sequence per CPU."""
        if self._views is None:
            self._views = [TraceView(c) for c in self.columns]
        return self._views

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({self.name!r}, cpus={self.cpu_count}, "
            f"accesses={self._total_accesses}, barriers={self.barrier_count})"
        )

    # -- derived views -------------------------------------------------

    def pages_touched(self, space: AddressSpace) -> Set[int]:
        """Distinct pages referenced by any CPU (one pass over columns)."""
        shift = ADDR_SHIFT + space.page_shift
        pages: Set[int] = set()
        for column in self.columns:
            pages.update(word >> shift for word in column if word >= 0)
        return pages

    def per_cpu_profile(self) -> List[Tuple[int, int, int]]:
        """Per-CPU ``(accesses, think_cycles, runs)`` triples, memoized.

        ``accesses`` and ``think_cycles`` let the engine account L1-hit
        and busy counters analytically (a completed run executes every
        access exactly once, and every access contributes
        ``think + 1`` busy cycles whether it hits or misses), so the
        hot loop carries no per-reference stats work at all.  ``runs``
        is the number of barrier-free access stretches — the upper
        bound on how far the run-ahead scheduler could drain this CPU
        if no other CPU ever intervened.  One pass per program
        lifetime; shared by every protocol of a sweep.
        """
        if self._profile is None:
            self._profile = [column_profile(c) for c in self.columns]
        return self._profile

    def run_length_stats(self) -> Dict[str, float]:
        """Summary of the per-CPU run structure (``trace-stats`` output).

        ``mean_run_length`` is accesses per barrier-free stretch — how
        much uninterrupted work a CPU has between synchronization
        points, the trace-side ceiling on run-ahead scheduling.
        """
        profile = self.per_cpu_profile()
        runs = sum(r for _, _, r in profile)
        accesses = self._total_accesses
        think = sum(th for _, th, _ in profile)
        return {
            "runs": runs,
            "mean_run_length": accesses / runs if runs else 0.0,
            "mean_think_cycles": think / accesses if accesses else 0.0,
        }

    def first_touch_homes(
        self, machine: MachineParams, space: AddressSpace
    ) -> Dict[int, int]:
        """First-touch page->home map, memoized per machine/page shape.

        The map depends only on the trace and the (machine, page-size)
        geometry — not the protocol — so one placement pass serves a
        whole cross-protocol sweep.  Callers that mutate the map (the
        engine adds late first-touches) must copy it first.
        """
        from repro.osint.placement import first_touch_homes

        key = (machine.nodes, machine.cpus_per_node, space.page_shift)
        homes = self._homes_cache.get(key)
        if homes is None:
            homes = first_touch_homes(self.columns, machine, space)
            self._homes_cache[key] = homes
        return homes


def compile_program(
    name: str,
    traces: Iterable[Sequence[object]],
    **kwargs,
) -> CompiledProgram:
    """Compile legacy per-CPU Access/Barrier sequences into a program."""
    return CompiledProgram(name, traces=list(traces), **kwargs)
