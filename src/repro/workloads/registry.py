"""Workload registry: name -> builder, with Table 3 metadata and a
process-wide compiled-program cache.

Trace generation is deterministic, so a ``(name, scale, machine-shape,
address-space)`` key always yields the same compiled program, and the
cache lets a cross-protocol sweep (the four systems of Figure 6, say)
generate and compile each workload exactly once: protocols differ only
in the :class:`~repro.common.params.SystemConfig`, never in the trace.
``build_counts()`` exposes how many times each key was actually
generated, so tests (and profiling) can assert the reuse contract.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.addressing import AddressSpace
from repro.common.errors import ConfigurationError
from repro.common.params import MachineParams
from repro.workloads.base import Program
from repro.workloads.apps import (
    barnes,
    cholesky,
    em3d,
    fft,
    fmm,
    lu,
    moldyn,
    ocean,
    radix,
    raytrace,
)

Builder = Callable[..., Program]

#: name -> (builder, problem description, paper input) — the paper's Table 3.
APPLICATIONS: Dict[str, Tuple[Builder, str, str]] = {
    "barnes": (barnes.build, "Barnes-Hut N-body simulation", barnes.PAPER_INPUT),
    "cholesky": (
        cholesky.build,
        "Blocked sparse Cholesky factorization",
        cholesky.PAPER_INPUT,
    ),
    "em3d": (em3d.build, "3-D electromagnetic wave propagation", em3d.PAPER_INPUT),
    "fft": (fft.build, "Complex 1-D radix-sqrt(n) six-step FFT", fft.PAPER_INPUT),
    "fmm": (fmm.build, "Fast Multipole N-body simulation", fmm.PAPER_INPUT),
    "lu": (lu.build, "Blocked dense LU factorization", lu.PAPER_INPUT),
    "moldyn": (moldyn.build, "Molecular dynamics simulation", moldyn.PAPER_INPUT),
    "ocean": (ocean.build, "Ocean simulation", ocean.PAPER_INPUT),
    "radix": (radix.build, "Integer radix sort", radix.PAPER_INPUT),
    "raytrace": (raytrace.build, "3-D scene rendering using ray-tracing", raytrace.PAPER_INPUT),
}

ProgramKey = Tuple[str, float, int, int, int, int]

_cache: Dict[ProgramKey, Program] = {}
#: how many times each key was actually *generated* (cache misses).
_build_counts: Counter = Counter()


def workload_names() -> List[str]:
    """All application names, in the paper's (alphabetical) order."""
    return list(APPLICATIONS)


def program_key(
    name: str,
    machine: Optional[MachineParams] = None,
    space: Optional[AddressSpace] = None,
    scale: float = 1.0,
) -> ProgramKey:
    """The compiled-program cache key: everything generation depends on."""
    machine = machine or MachineParams()
    space = space or AddressSpace()
    return (
        name,
        scale,
        machine.nodes,
        machine.cpus_per_node,
        space.block_size,
        space.page_size,
    )


def build_program(
    name: str,
    machine: Optional[MachineParams] = None,
    space: Optional[AddressSpace] = None,
    scale: float = 1.0,
    use_cache: bool = True,
) -> Program:
    """Build (or fetch from cache) the named application's program."""
    if name not in APPLICATIONS:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {', '.join(APPLICATIONS)}"
        )
    machine = machine or MachineParams()
    space = space or AddressSpace()
    key = program_key(name, machine, space, scale)
    if use_cache and key in _cache:
        return _cache[key]
    builder, _, _ = APPLICATIONS[name]
    program = builder(machine, space, scale=scale)
    _build_counts[key] += 1
    if use_cache:
        _cache[key] = program
    return program


def build_counts() -> Dict[ProgramKey, int]:
    """Generation counts per program key since the last reset.

    A four-protocol sweep over a warm cache shows exactly one build per
    (app, scale, machine, space) — the cross-protocol reuse contract.
    """
    return dict(_build_counts)


def reset_build_counts() -> None:
    """Zero the generation counters (tests bracket sweeps with this)."""
    _build_counts.clear()


def clear_cache() -> None:
    """Drop all cached programs (tests use this to bound memory)."""
    _cache.clear()
