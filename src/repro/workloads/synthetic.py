"""Synthetic reference streams for model validation and stress tests.

These are not Table 3 applications; they are the adversarial patterns of
Section 3.2's competitive analysis, used by the property tests and the
model-validation benchmark:

- :func:`worst_case_for_rnuma` — a page is refetched exactly to the
  threshold (triggering relocation) and then never touched again:
  R-NUMA pays CC-NUMA's cost *plus* relocation *plus* allocation,
  EQ 1's worst case.
- :func:`reuse_page_stream` — one page refetched forever: S-COMA/R-NUMA
  heaven, CC-NUMA's worst case.
- :func:`streaming_pages` — march through pages touching each block
  once: no protocol can win; S-COMA pays an allocation per page.

Generating a *refetch* takes care: two blocks of one 4-KB page can
never conflict in an 8-KB L1, so each hot read is interleaved with a
read of a CPU-local "evictor" block that aliases the hot block's L1 set.
The two hot blocks per page are chosen two block-numbers apart so they
collide in the 128-byte (two-line) block cache of the paper's R-NUMA
configuration — and of the small CC-NUMA block caches these streams are
studied with.
"""

from __future__ import annotations

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder
from repro.workloads.layout import Layout, Region

#: distance in blocks between the two hot blocks of a page; both land in
#: the same set of any direct-mapped block cache of <= 2 blocks... i.e.
#: the 128-byte R-NUMA device (and they also collide in 256-byte ones).
CONFLICT_STRIDE_BLOCKS = 2


def _two_node_builder(machine: MachineParams) -> TraceBuilder:
    if machine.nodes < 2:
        raise ValueError("synthetic streams need at least two nodes")
    return TraceBuilder(machine)


def _evictor_addr(
    space: AddressSpace,
    hot: Region,
    local: Region,
    hot_page_index: int,
    offset_blocks: int,
) -> int:
    """A CPU-0-local address whose L1 set aliases the hot block's.

    An 8-KB, 64-B-line L1 wraps every two 4-KB pages, so a local page
    with the same *global* page parity as the hot page aliases it
    set-for-set.
    """
    l1_pages = max(1, (8 * 1024) // space.page_size)
    hot_global = space.page_of(hot.page_base_addr(hot_page_index))
    # Pick the local page whose *global* page number matches the hot
    # page modulo the L1's page span — set-for-set aliasing.
    for li in range(local.num_pages):
        if (local.first_page + li) % l1_pages == hot_global % l1_pages:
            return local.page_base_addr(li) + offset_blocks * space.block_size
    return local.page_base_addr(0) + offset_blocks * space.block_size


def _conflict_round(
    tb: TraceBuilder,
    space: AddressSpace,
    hot: Region,
    local: Region,
    page_index: int,
    stride: int,
) -> None:
    """Two hot refetch-candidates interleaved with local evictors."""
    hot_base = hot.page_base_addr(page_index)
    for offset in (0, stride):
        tb.read(0, hot_base + offset * space.block_size, think=1)
        tb.read(0, _evictor_addr(space, hot, local, page_index, offset), think=1)


def _make_regions(machine: MachineParams, space: AddressSpace, tb: TraceBuilder, pages: int):
    layout = Layout(space)
    hot = layout.region("hot", pages * space.page_size)
    l1_pages = max(1, (8 * 1024) // space.page_size)
    local = layout.region("evictor", l1_pages * space.page_size)
    owner_cpu = machine.cpus_per_node  # first CPU of node 1 homes "hot"
    tb.first_touch(owner_cpu, (hot.page_base_addr(i) for i in range(pages)))
    tb.first_touch(0, (local.page_base_addr(i) for i in range(l1_pages)))
    return hot, local


def worst_case_for_rnuma(
    machine: MachineParams,
    space: AddressSpace,
    threshold: int,
    conflict_stride_blocks: int = CONFLICT_STRIDE_BLOCKS,
    pages: int = 8,
) -> Program:
    """Each remote page is refetched just past ``threshold`` times and
    then abandoned — R-NUMA relocates it for nothing (EQ 1's case)."""
    tb = _two_node_builder(machine)
    hot, local = _make_regions(machine, space, tb, pages)
    tb.barrier()
    rounds = threshold // 2 + 2  # 2 refetches per round once warm
    for p in range(pages):
        for _ in range(rounds):
            _conflict_round(tb, space, hot, local, p, conflict_stride_blocks)
    tb.barrier()
    return tb.build("worst-case-rnuma", description="EQ 1 adversarial stream")


def reuse_page_stream(
    machine: MachineParams,
    space: AddressSpace,
    repeats: int = 2000,
    conflict_stride_blocks: int = CONFLICT_STRIDE_BLOCKS,
) -> Program:
    """One remote page refetched forever (CC-NUMA's worst case)."""
    tb = _two_node_builder(machine)
    hot, local = _make_regions(machine, space, tb, pages=1)
    tb.barrier()
    for _ in range(repeats):
        _conflict_round(tb, space, hot, local, 0, conflict_stride_blocks)
    tb.barrier()
    return tb.build("reuse-page", description="single hot remote page")


def streaming_pages(
    machine: MachineParams,
    space: AddressSpace,
    pages: int = 64,
    touches_per_block: int = 1,
) -> Program:
    """Touch every block of many remote pages once and move on
    (S-COMA's worst case: one allocation per page, no reuse)."""
    tb = _two_node_builder(machine)
    layout = Layout(space)
    region = layout.region("stream", (pages + 1) * space.page_size)
    owner_cpu = machine.cpus_per_node
    tb.first_touch(owner_cpu, (region.page_base_addr(i) for i in range(pages + 1)))
    tb.barrier()
    for p in range(pages):
        base = region.page_base_addr(p)
        for blk in range(space.blocks_per_page):
            for _ in range(touches_per_block):
                tb.read(0, base + blk * space.block_size, think=1)
    tb.barrier()
    return tb.build("streaming", description="no-reuse page march")
