"""Shared-address-space layout for workload kernels.

A :class:`Layout` hands out page-aligned :class:`Region` objects (named
arrays) in a single global address space.  Kernels address data through
regions so the access streams they emit land on well-defined pages and
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.addressing import AddressSpace
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Region:
    """A page-aligned array in the shared address space."""

    name: str
    base: int
    size: int
    space: AddressSpace

    def addr(self, offset: int) -> int:
        """Byte address at ``offset`` within the region."""
        if not 0 <= offset < self.size:
            raise ConfigurationError(
                f"offset {offset} outside region {self.name!r} of {self.size} bytes"
            )
        return self.base + offset

    def elem(self, index: int, elem_size: int) -> int:
        """Byte address of fixed-size element ``index``."""
        return self.addr(index * elem_size)

    def block(self, index: int) -> int:
        """Byte address of the ``index``-th cache block of the region."""
        return self.addr(index * self.space.block_size)

    @property
    def num_blocks(self) -> int:
        return (self.size + self.space.block_size - 1) // self.space.block_size

    @property
    def num_pages(self) -> int:
        return (self.size + self.space.page_size - 1) // self.space.page_size

    @property
    def first_page(self) -> int:
        return self.space.page_of(self.base)

    def pages(self) -> range:
        """Page numbers spanned by the region."""
        first = self.first_page
        return range(first, first + self.num_pages)

    def page_base_addr(self, page_index: int) -> int:
        """Byte address of the start of the region's ``page_index``-th page."""
        if not 0 <= page_index < self.num_pages:
            raise ConfigurationError(
                f"page index {page_index} outside region {self.name!r}"
            )
        return self.base + page_index * self.space.page_size


class Layout:
    """Bump allocator handing out page-aligned regions."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self._next = 0
        self._regions: Dict[str, Region] = {}

    def region(self, name: str, size: int) -> Region:
        """Allocate ``size`` bytes (rounded up to whole pages)."""
        if size <= 0:
            raise ConfigurationError(f"region {name!r} must have positive size")
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} already allocated")
        pages = (size + self.space.page_size - 1) // self.space.page_size
        region = Region(name, self._next, pages * self.space.page_size, self.space)
        self._next += pages * self.space.page_size
        self._regions[name] = region
        return region

    def get(self, name: str) -> Region:
        return self._regions[name]

    def regions(self) -> List[Region]:
        return list(self._regions.values())

    @property
    def total_bytes(self) -> int:
        return self._next
