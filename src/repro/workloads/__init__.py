"""Workload suite: scaled SPLASH-2-style mini-kernels (Table 3) plus
synthetic adversarial reference streams.

Each application module builds a :class:`Program` — one trace per
processor with barriers — by *running* a miniature version of the real
computation (LU elimination order, FFT transpose, radix scatter, n-body
tree walks, stencil sweeps, ...) over a laid-out shared address space.
The kernels are scaled per DESIGN.md: sharing type, working-set size
relative to the paper's cache sizes, page-level density, and load
imbalance are preserved; absolute instruction counts are not.
"""

from repro.workloads.base import Program, TraceBuilder
from repro.workloads.compile import CompiledProgram, compile_program
from repro.workloads.layout import Layout, Region
from repro.workloads.registry import (
    APPLICATIONS,
    build_counts,
    build_program,
    workload_names,
)

__all__ = [
    "APPLICATIONS",
    "CompiledProgram",
    "Layout",
    "Program",
    "Region",
    "TraceBuilder",
    "build_counts",
    "build_program",
    "compile_program",
    "workload_names",
]
