"""barnes: Barnes-Hut hierarchical N-body simulation (SPLASH-2).

Paper input: 16K particles.  Scaled: 2K bodies, 6K tree cells,
2 timesteps.

Sharing behaviour preserved: force computation walks the shared octree;
the top levels (here: the first 16 pages of cells) are read by *every*
processor thousands of times per step — a compact, intensely reused
remote working set that overwhelms a 32-KB block cache (1024 hot blocks
vs. 512 frames) but trivially fits the page cache.  The rest of the tree
and the remote bodies push the per-node footprint past the 80 page-cache
frames, so pure S-COMA still replaces pages.  R-NUMA relocates exactly
the hot tree pages and beats both (the paper's best case: 37% better
than the best of CC-NUMA/S-COMA).  The tree is rebuilt (rewritten) each
step, so hot-page copies are invalidated between steps — read-write
sharing, which is why replication of read-only pages would not help
(Table 4: 97% of barnes refetches are to read-write pages).
"""

from __future__ import annotations

import random

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

from repro.workloads.apps import stripe_pages_across_nodes

CELL_BYTES = 64
BODY_BYTES = 64

PAPER_INPUT = "16K particles"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 5,
) -> Program:
    cpus = machine.total_cpus
    n_bodies = scaled(2048, scale, cpus * 8)
    n_bodies -= n_bodies % cpus
    n_cells = scaled(6016, scale, 512)
    hot_cells = min(n_cells // 2, 1024)  # top of the tree
    reads_per_body = 24
    hot_reads = 20
    steps = 2
    per_cpu = n_bodies // cpus
    cells_per_page = space.page_size // CELL_BYTES
    rng = random.Random(seed)

    layout = Layout(space)
    cells = layout.region("cells", n_cells * CELL_BYTES)
    bodies = layout.region("bodies", n_bodies * BODY_BYTES)
    tb = TraceBuilder(machine)

    # Tree pages striped across nodes; bodies partitioned per CPU.
    stripe_pages_across_nodes(tb, cells, machine)
    for cpu in range(cpus):
        lo = cpu * per_cpu
        tb.first_touch(
            cpu, (bodies.elem(i, BODY_BYTES) for i in range(lo, lo + per_cpu))
        )
    tb.barrier()

    # Cells are rebuilt by striped owners (one writer per page).
    def rebuild_tree() -> None:
        for page in range(cells.num_pages):
            cpu = (page % machine.nodes) * machine.cpus_per_node
            base = page * cells_per_page
            for c in range(base, min(base + cells_per_page, n_cells)):
                tb.write(cpu, cells.elem(c, CELL_BYTES), think=2)
        tb.barrier()

    for _ in range(steps):
        rebuild_tree()
        # Force phase: every body walks the tree.
        for cpu in range(cpus):
            lo = cpu * per_cpu
            for i in range(lo, lo + per_cpu):
                for r in range(reads_per_body):
                    if r < hot_reads:
                        c = rng.randrange(hot_cells)
                    else:
                        c = hot_cells + rng.randrange(n_cells - hot_cells)
                    tb.read(cpu, cells.elem(c, CELL_BYTES), think=3)
                tb.write(cpu, bodies.elem(i, BODY_BYTES), think=4)
        tb.barrier()
        # Update phase: owners advance their bodies.
        for cpu in range(cpus):
            lo = cpu * per_cpu
            for i in range(lo, lo + per_cpu):
                tb.read(cpu, bodies.elem(i, BODY_BYTES), think=2)
                tb.write(cpu, bodies.elem(i, BODY_BYTES), think=3)
        tb.barrier()

    return tb.build(
        "barnes",
        description="Barnes-Hut N-body: shared octree walks with per-step rebuild",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n_bodies} particles, {n_cells} cells, {steps} steps",
        bodies=n_bodies,
        cells=n_cells,
    )
