"""The ten applications of the paper's Table 3, as scaled mini-kernels.

Every module exposes ``build(machine, space, scale=1.0, seed=...)``
returning a :class:`repro.workloads.base.Program`.  See each module's
docstring for what the paper ran, how we scale it, and which sharing
behaviour the kernel is designed to preserve.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.params import MachineParams
from repro.workloads.base import TraceBuilder
from repro.workloads.layout import Region


def stripe_pages_across_nodes(
    tb: TraceBuilder, region: Region, machine: MachineParams
) -> None:
    """First-touch a region so its pages land round-robin across nodes.

    Page ``i`` is touched by CPU 0 of node ``i % nodes`` — the idiom the
    paper's applications use to distribute shared data structures.
    """
    for i in range(region.num_pages):
        cpu = (i % machine.nodes) * machine.cpus_per_node
        tb.first_touch(cpu, [region.page_base_addr(i)])


def own_pages(
    tb: TraceBuilder, region: Region, cpu: int, page_indices: Iterable[int]
) -> None:
    """First-touch selected region pages from ``cpu`` (its partition)."""
    tb.first_touch(cpu, [region.page_base_addr(i) for i in page_indices])


def partition_pages_by_cpu(
    tb: TraceBuilder, region: Region, machine: MachineParams
) -> None:
    """First-touch a region partitioned contiguously across all CPUs."""
    per_cpu = region.num_pages // machine.total_cpus
    extra = region.num_pages % machine.total_cpus
    page = 0
    for cpu in range(machine.total_cpus):
        count = per_cpu + (1 if cpu < extra else 0)
        own_pages(tb, region, cpu, range(page, page + count))
        page += count
