"""em3d: 3-D electromagnetic wave propagation (Split-C benchmark).

Paper input: 76800 graph nodes, 15% remote edges, 5 iterations.
Scaled: 4096 graph nodes (128 bytes of field state each), degree 4,
15% remote edges, 3 iterations.

Sharing behaviour preserved: em3d is the canonical *communication*
workload.  Each iteration every graph node reads its neighbours' values
— which the neighbours' owners rewrote in the previous iteration — so
nearly all remote misses are coherence misses and the block cache's size
barely matters (CC-NUMA performs like the ideal machine).  The remote
pages a node reads from, however, span more pages than the 80-frame
S-COMA page cache, so pure S-COMA thrashes on allocation/replacement
(the tall S-COMA bar in Figure 6).
"""

from __future__ import annotations

import random

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

#: bytes of field state per graph node (E/H values + coefficients)
NODE_BYTES = 128

PAPER_INPUT = "76800 nodes, 15% remote, 5 iters"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 1701,
) -> Program:
    cpus = machine.total_cpus
    n_nodes = scaled(4096, scale, cpus * 8)
    n_nodes -= n_nodes % cpus
    degree = 4
    iters = scaled(3, scale, 1)
    remote_fraction = 0.15
    per_cpu = n_nodes // cpus
    rng = random.Random(seed)

    layout = Layout(space)
    values = layout.region("values", n_nodes * NODE_BYTES)
    tb = TraceBuilder(machine)

    def node_addr(i: int, half: int) -> int:
        return values.elem(i, NODE_BYTES) + half * space.block_size

    # Init: each CPU touches both blocks of every node it owns, homing
    # its partition locally.
    for cpu in range(cpus):
        lo = cpu * per_cpu
        tb.first_touch(
            cpu,
            (node_addr(i, h) for i in range(lo, lo + per_cpu) for h in (0, 1)),
        )

    # Bipartite-ish neighbour lists: 15% of edges point into a uniformly
    # random *other* CPU's partition, the rest stay local.
    neighbours = []
    for i in range(n_nodes):
        owner = i // per_cpu
        targets = []
        for _ in range(degree):
            if rng.random() < remote_fraction:
                other = rng.randrange(cpus - 1)
                if other >= owner:
                    other += 1
                targets.append(other * per_cpu + rng.randrange(per_cpu))
            else:
                targets.append(owner * per_cpu + rng.randrange(per_cpu))
        neighbours.append(targets)

    tb.barrier()

    for _ in range(iters):
        for cpu in range(cpus):
            lo = cpu * per_cpu
            for i in range(lo, lo + per_cpu):
                for j in neighbours[i]:
                    tb.read(cpu, node_addr(j, 0), think=2)
                    tb.read(cpu, node_addr(j, 1), think=2)
                tb.write(cpu, node_addr(i, 0), think=3)
                tb.write(cpu, node_addr(i, 1), think=3)
        tb.barrier()

    return tb.build(
        "em3d",
        description="3-D electromagnetic wave propagation on a bipartite graph",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n_nodes} nodes, 15% remote, {iters} iters",
        graph_nodes=n_nodes,
        iterations=iters,
    )
