"""fmm: adaptive Fast Multipole Method N-body (SPLASH-2).

Paper input: 16K particles.  Scaled: 2K bodies over a 16K-cell
interaction structure (1 MB of cells = 256 pages).

Sharing behaviour preserved: FMM's interaction lists walk *windows* of
cells with strong short-range temporal locality (a 32-KB block cache
captures each window, so CC-NUMA does well) but the union of windows per
node is far larger than the 320-KB page cache.  Under R-NUMA the tiny
128-byte block cache turns window reuse into refetches, pages relocate,
and the overflowing page cache makes them bounce — the paper measures
142% of CC-NUMA's refetches and R-NUMA up to ~57% slower than CC-NUMA,
its worst case.  Pure S-COMA thrashes outright (~4x worse than CC).
"""

from __future__ import annotations

import random

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

from repro.workloads.apps import stripe_pages_across_nodes

CELL_BYTES = 64
BODY_BYTES = 64

PAPER_INPUT = "16K particles"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 23,
) -> Program:
    cpus = machine.total_cpus
    n_bodies = scaled(2048, scale, cpus * 8)
    n_bodies -= n_bodies % cpus
    n_cells = scaled(16384, scale, 2048)
    per_cpu = n_bodies // cpus
    bodies_per_group = 4
    window_pages = 4
    window_reads = 110
    global_reads = 12
    cells_per_page = space.page_size // CELL_BYTES
    n_cell_pages = n_cells // cells_per_page
    rng = random.Random(seed)

    layout = Layout(space)
    cells = layout.region("cells", n_cells * CELL_BYTES)
    bodies = layout.region("bodies", n_bodies * BODY_BYTES)
    tb = TraceBuilder(machine)

    stripe_pages_across_nodes(tb, cells, machine)
    for cpu in range(cpus):
        lo = cpu * per_cpu
        tb.first_touch(
            cpu, (bodies.elem(i, BODY_BYTES) for i in range(lo, lo + per_cpu))
        )
    tb.barrier()

    # Upward pass: striped owners compute multipole expansions (write).
    for page in range(n_cell_pages):
        cpu = (page % machine.nodes) * machine.cpus_per_node
        base = page * cells_per_page
        for c in range(base, base + cells_per_page, 2):
            tb.write(cpu, cells.elem(c, CELL_BYTES), think=2)
    tb.barrier()

    # Downward pass / force evaluation: interaction-list walks, with a
    # mid-phase multipole refresh (owners republish a quarter of the
    # expansions), which is what makes fmm's refetched pages read-write
    # shared in the paper (Table 4: 99%).
    groups_per_cpu = per_cpu // bodies_per_group

    def walk_groups(first_group: int, last_group: int) -> None:
        for cpu in range(cpus):
            lo = cpu * per_cpu
            window_start = (cpu * (n_cell_pages // cpus)) % n_cell_pages
            for g in range(first_group, last_group):
                w_page = (window_start + g * 6) % max(1, n_cell_pages - window_pages)
                w_base = w_page * cells_per_page
                w_span = window_pages * cells_per_page
                for b in range(bodies_per_group):
                    i = lo + g * bodies_per_group + b
                    for _ in range(window_reads):
                        c = w_base + rng.randrange(w_span)
                        tb.read(cpu, cells.elem(min(c, n_cells - 1), CELL_BYTES), think=3)
                    for _ in range(global_reads):
                        c = rng.randrange(n_cells)
                        tb.read(cpu, cells.elem(c, CELL_BYTES), think=3)
                    tb.write(cpu, bodies.elem(i, BODY_BYTES), think=4)
        tb.barrier()

    def refresh_multipoles() -> None:
        for page in range(n_cell_pages):
            cpu = (page % machine.nodes) * machine.cpus_per_node
            base = page * cells_per_page
            for c in range(base, base + cells_per_page, 4):
                tb.write(cpu, cells.elem(c, CELL_BYTES), think=2)
        tb.barrier()

    walk_groups(0, groups_per_cpu // 2)
    refresh_multipoles()
    walk_groups(groups_per_cpu // 2, groups_per_cpu)

    # Body update.
    for cpu in range(cpus):
        lo = cpu * per_cpu
        for i in range(lo, lo + per_cpu):
            tb.read(cpu, bodies.elem(i, BODY_BYTES), think=2)
            tb.write(cpu, bodies.elem(i, BODY_BYTES), think=3)
    tb.barrier()

    return tb.build(
        "fmm",
        description="Fast Multipole Method: windowed interaction-list walks",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n_bodies} particles, {n_cells} cells",
        bodies=n_bodies,
        cells=n_cells,
    )
