"""radix: parallel integer radix sort (SPLASH-2).

Paper input: 1M integers, radix 1024.  Scaled: 128K integers, radix 256,
one digit pass (the paper's key/page-cache *ratio* is what matters: the
permutation's footprint per node must exceed the page-cache frames).

Sharing behaviour preserved: the permutation (scatter) phase is an
all-to-all in which every processor "marches through a large number of
remote pages writing a small number of blocks" (paper, Section 5.1) —
capacity misses are spread almost uniformly across pages (the flat radix
curve in Figure 5), so R-NUMA's per-page counters sit right at the
threshold and the page cache could not hold the pages anyway.  The
destination array alone spans ~112 remote pages per node versus 80
page-cache frames, so pure S-COMA takes an allocation storm and loses to
CC-NUMA by a large factor (Figure 6).
"""

from __future__ import annotations

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

KEY_BYTES = 4
RADIX = 256

PAPER_INPUT = "1M integers, radix 1024"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 99,
) -> Program:
    # Deferred so `import repro` works in NumPy-free environments (the
    # simulator itself has no hard dependency); only *generating* this
    # trace needs NumPy — the key digits and the stable rank permutation
    # are pinned to its seeded RNG and argsort, so swapping in the
    # stdlib would silently change every frozen radix result.
    import numpy as np

    cpus = machine.total_cpus
    n = scaled(100352, scale, cpus * 512)
    n -= n % cpus
    per_cpu = n // cpus
    keys_per_block = space.block_size // KEY_BYTES

    rng = np.random.default_rng(seed)
    digits = rng.integers(0, RADIX, size=n, dtype=np.int64)

    layout = Layout(space)
    src = layout.region("keys", n * KEY_BYTES)
    dst = layout.region("sorted", n * KEY_BYTES)
    hist = layout.region("histogram", cpus * RADIX * KEY_BYTES)
    tb = TraceBuilder(machine)

    for cpu in range(cpus):
        lo = cpu * per_cpu
        for region in (src, dst):
            tb.first_touch(
                cpu,
                (
                    region.addr(i * KEY_BYTES)
                    for i in range(lo, lo + per_cpu, keys_per_block)
                ),
            )
        tb.first_touch(cpu, [hist.addr(cpu * RADIX * KEY_BYTES)])
    tb.barrier()

    # Histogram: each CPU scans its own keys, writes its own slice.
    for cpu in range(cpus):
        lo = cpu * per_cpu
        for i in range(lo, lo + per_cpu, keys_per_block):
            tb.read(cpu, src.addr(i * KEY_BYTES), think=3)
        base = cpu * RADIX * KEY_BYTES
        for off in range(0, RADIX * KEY_BYTES, space.block_size):
            tb.write(cpu, hist.addr(base + off), think=2)
    tb.barrier()

    # Prefix: every CPU reads every other CPU's histogram slice.
    for cpu in range(cpus):
        for other in range(cpus):
            base = other * RADIX * KEY_BYTES
            for off in range(0, RADIX * KEY_BYTES, space.block_size * 4):
                tb.read(cpu, hist.addr(base + off), think=2)
    tb.barrier()

    # Stable global ranks: bucket-major, then source order.
    ranks = np.empty(n, dtype=np.int64)
    sort_idx = np.argsort(digits, kind="stable")
    ranks[sort_idx] = np.arange(n)

    # Permutation: sequential source reads, scattered remote writes.
    for cpu in range(cpus):
        lo = cpu * per_cpu
        last_block = -1
        for i in range(lo, lo + per_cpu):
            blk = i // keys_per_block
            if blk != last_block:
                tb.read(cpu, src.addr(blk * space.block_size), think=2)
                last_block = blk
            tb.write(cpu, dst.addr(int(ranks[i]) * KEY_BYTES), think=2)
    tb.barrier()

    return tb.build(
        "radix",
        description="radix sort: histogram, prefix, all-to-all permutation",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n} integers, radix {RADIX}, 1 pass",
        keys=n,
    )
