"""cholesky: blocked sparse Cholesky factorization (SPLASH-2).

Paper input: tk16.O.  Scaled: a synthetic sparse supernodal structure of
96 column blocks (2 KB each) with skewed fill — a few dense "supernode"
columns are read by almost every later column's update, the long sparse
tail is touched rarely.

Sharing behaviour preserved: cholesky's refetch traffic concentrates in
a small set of heavily reused source columns (Figure 5: <10% of pages
cover >80% of refetches) and much of it is *read-only* reuse — sources
are written once, then only read (Table 4: only 28% of refetches are to
read-write pages).  The reuse set fits the 320-KB page cache, so S-COMA
and R-NUMA both beat CC-NUMA, R-NUMA lagging slightly because every
page must cross the threshold before relocating.
"""

from __future__ import annotations

import random

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

COL_BLOCK_BYTES = 2048

PAPER_INPUT = "tk16.O"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 13,
) -> Program:
    cpus = machine.total_cpus
    n_cols = scaled(128, scale, cpus)
    supernodes = max(4, int(n_cols * 0.3))  # the dense, hot columns
    lines_per_col = COL_BLOCK_BYTES // space.block_size
    rng = random.Random(seed)

    layout = Layout(space)
    mat = layout.region("columns", n_cols * COL_BLOCK_BYTES)
    tb = TraceBuilder(machine)

    def owner(j: int) -> int:
        return j % cpus

    def line_addr(j: int, line: int) -> int:
        return mat.addr(j * COL_BLOCK_BYTES + line * space.block_size)

    for j in range(n_cols):
        tb.first_touch(owner(j), (line_addr(j, l) for l in range(lines_per_col)))
    tb.barrier()

    # Sparse elimination: process columns in waves; each column's update
    # reads a skewed sample of earlier columns (supernodes dominate).
    wave = max(1, cpus // 2)
    for j0 in range(0, n_cols, wave):
        for j in range(j0, min(j0 + wave, n_cols)):
            cpu = owner(j)
            # Fill-in accumulates: later columns receive more updates —
            # which keeps the supernode columns hot through the whole
            # factorization instead of only while they are young.
            updates = 4 + j // 6
            sources = []
            for _ in range(updates):
                if j > 0 and rng.random() < 0.8:
                    sources.append(rng.randrange(min(j, supernodes)))
                elif j > 0:
                    sources.append(rng.randrange(j))
            for k in sources:
                for l in range(lines_per_col):
                    tb.read(cpu, line_addr(k, l), think=3)
            # Factor own column: two read-modify-write passes.
            for _ in range(2):
                for l in range(lines_per_col):
                    tb.read(cpu, line_addr(j, l), think=2)
                    tb.write(cpu, line_addr(j, l), think=4)
        tb.barrier()

    return tb.build(
        "cholesky",
        description="sparse supernodal Cholesky: skewed read-only column reuse",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n_cols} column blocks, {supernodes} supernodes",
        columns=n_cols,
    )
