"""moldyn: CHARMM-like molecular dynamics (shared-memory Split-C/CHAOS
benchmark).

Paper input: 2048 particles, 15 iterations.  Scaled: 3072 particles,
3 iterations with two force passes each.

Sharing behaviour preserved: each processor's non-bonded force loop
reads a *fixed neighbourhood* of other processors' particles over and
over (the neighbour list changes slowly), so the per-node remote
working set is compact — tens of pages, comfortably inside the 320-KB
page cache — but far larger than a 32-KB block cache.  Pure S-COMA
captures it completely and wins big over CC-NUMA; R-NUMA relocates the
same pages after crossing the threshold and lands within a few percent
of S-COMA (Figure 6: CC-NUMA is the worst protocol for moldyn by ~2x).
Positions are republished by their owners every iteration, so the pages
are read-write shared (Table 4: 98%) and read-only replication would
not help.
"""

from __future__ import annotations

import random

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

BODY_BYTES = 64

PAPER_INPUT = "2048 particles, 15 iters"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 31,
) -> Program:
    cpus = machine.total_cpus
    n = scaled(2560, scale, cpus * 8)
    n -= n % cpus
    per_cpu = n // cpus
    iters = scaled(3, scale, 1)
    force_passes = 3
    neighbours_per_body = 10
    rng = random.Random(seed)

    layout = Layout(space)
    parts = layout.region("particles", n * BODY_BYTES)
    tb = TraceBuilder(machine)

    for cpu in range(cpus):
        lo = cpu * per_cpu
        tb.first_touch(
            cpu, (parts.elem(i, BODY_BYTES) for i in range(lo, lo + per_cpu))
        )
    tb.barrier()

    # Static neighbour lists: spatial decomposition means a node's
    # particles interact with the partitions of the two adjacent nodes —
    # a compact remote pool, reused heavily every force pass.
    cpn = machine.cpus_per_node
    neighbour_list = []
    for cpu in range(cpus):
        node = cpu // cpn
        partners = [
            ((node - 1) % machine.nodes) * cpn + k for k in range(cpn)
        ] + [((node + 1) % machine.nodes) * cpn + k for k in range(cpn)]
        lists = []
        for _ in range(per_cpu):
            picks = []
            for _ in range(neighbours_per_body):
                p = partners[rng.randrange(len(partners))]
                picks.append(p * per_cpu + rng.randrange(per_cpu))
            lists.append(picks)
        neighbour_list.append(lists)

    for _ in range(iters):
        for _ in range(force_passes):
            for cpu in range(cpus):
                lo = cpu * per_cpu
                lists = neighbour_list[cpu]
                for b in range(per_cpu):
                    for j in lists[b]:
                        tb.read(cpu, parts.elem(j, BODY_BYTES), think=1)
                    tb.write(cpu, parts.elem(lo + b, BODY_BYTES), think=2)
            tb.barrier()
        # Position update: owners republish their particles.
        for cpu in range(cpus):
            lo = cpu * per_cpu
            for i in range(lo, lo + per_cpu):
                tb.read(cpu, parts.elem(i, BODY_BYTES), think=2)
                tb.write(cpu, parts.elem(i, BODY_BYTES), think=3)
        tb.barrier()

    return tb.build(
        "moldyn",
        description="molecular dynamics: fixed neighbour-list force loops",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n} particles, {iters} iters",
        particles=n,
        iterations=iters,
    )
