"""lu: blocked dense LU factorization (SPLASH-2, non-contiguous blocks).

Paper input: 512x512 matrix, 16x16 blocks.  Scaled: 256x256 matrix,
16x16 blocks (a 16x16 grid of blocks), 2-D scatter decomposition.

Sharing behaviour preserved: the matrix is stored row-major (the SPLASH-2
non-contiguous variant), so one 4-KB page holds segments of *many*
owners' blocks and — after first-touch — most of the data a processor
reads and writes every elimination step lives on remote pages.  Each
step revisits the active trailing submatrix: a per-node remote *reuse*
working set far larger than the 32-KB block cache (CC-NUMA refetches
every step) yet small enough for the 320-KB page cache (S-COMA wins;
R-NUMA relocates and follows).  The shrinking active set also gives lu
its load imbalance: a couple of nodes perform most of the page
replacements on the critical path, making lu the application most
sensitive to relocation overhead (Figure 9).
"""

from __future__ import annotations

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

BLOCK_EDGE = 16  # elements per matrix-block edge
ELEM_BYTES = 8   # double

PAPER_INPUT = "512x512 matrix, 16x16 blocks"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 7,
) -> Program:
    cpus = machine.total_cpus
    grid = scaled(16, scale ** 0.5, 8)        # grid x grid matrix blocks
    n = grid * BLOCK_EDGE                     # matrix edge in elements
    row_bytes = n * ELEM_BYTES
    seg_bytes = BLOCK_EDGE * ELEM_BYTES       # one block's row segment
    lines_per_seg = max(1, seg_bytes // space.block_size)

    layout = Layout(space)
    mat = layout.region("matrix", n * row_bytes)
    tb = TraceBuilder(machine)

    # 2-D scatter of blocks onto a CPU grid.
    cpu_rows = 4
    cpu_cols = cpus // cpu_rows

    def owner(bi: int, bj: int) -> int:
        return (bi % cpu_rows) * cpu_cols + (bj % cpu_cols)

    def seg_addr(bi: int, bj: int, row: int, line: int) -> int:
        return mat.addr(
            (bi * BLOCK_EDGE + row) * row_bytes
            + bj * seg_bytes
            + line * space.block_size
        )

    # Init: each owner touches its block's row segments.  Because the
    # matrix is row-major, a page spans many owners' segments — the
    # first toucher wins and most owners end up with remote data.
    for bi in range(grid):
        for bj in range(grid):
            tb.first_touch(
                owner(bi, bj),
                (
                    seg_addr(bi, bj, r, l)
                    for r in range(BLOCK_EDGE)
                    for l in range(lines_per_seg)
                ),
            )
    tb.barrier()

    def read_block(cpu: int, bi: int, bj: int) -> None:
        for r in range(BLOCK_EDGE):
            for l in range(lines_per_seg):
                tb.read(cpu, seg_addr(bi, bj, r, l), think=3)

    def update_block(cpu: int, bi: int, bj: int) -> None:
        for r in range(BLOCK_EDGE):
            for l in range(lines_per_seg):
                addr = seg_addr(bi, bj, r, l)
                tb.read(cpu, addr, think=2)
                tb.write(cpu, addr, think=4)

    for k in range(grid):
        update_block(owner(k, k), k, k)
        tb.barrier()

        for j in range(k + 1, grid):
            cpu = owner(k, j)
            read_block(cpu, k, k)
            update_block(cpu, k, j)
        for i in range(k + 1, grid):
            cpu = owner(i, k)
            read_block(cpu, k, k)
            update_block(cpu, i, k)
        tb.barrier()

        for i in range(k + 1, grid):
            for j in range(k + 1, grid):
                cpu = owner(i, j)
                read_block(cpu, i, k)
                read_block(cpu, k, j)
                update_block(cpu, i, j)
        tb.barrier()

    return tb.build(
        "lu",
        description=(
            "blocked dense LU, non-contiguous (row-major) blocks, "
            "2-D scatter decomposition"
        ),
        paper_input=PAPER_INPUT,
        scaled_input=f"{n}x{n} matrix, 16x16 blocks",
        grid=grid,
    )
