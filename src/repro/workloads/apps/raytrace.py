"""raytrace: 3-D scene rendering by ray tracing (SPLASH-2).

Paper input: car.  Scaled: a 6144-cell scene (BSP tree + primitives,
96 pages) rendered by 32 processors tracing 160 rays each.

Sharing behaviour preserved: the scene is written once during setup and
then only *read* — raytrace is the paper's one application where most
refetched pages are read-only (Table 4: just 5% read-write).  Rays hammer
the top of the BSP tree (a hot set larger than the 32-KB block cache)
while also touching scattered scene pages that push the per-node
footprint past the page-cache frames.  R-NUMA relocates exactly the hot
pages and beats both pure protocols; CC-NUMA refetches the hot set
forever; S-COMA replaces pages it will need again.
"""

from __future__ import annotations

import random

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout

from repro.workloads.apps import stripe_pages_across_nodes

CELL_BYTES = 64
PIXEL_BYTES = 64

PAPER_INPUT = "car"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 77,
) -> Program:
    cpus = machine.total_cpus
    n_cells = scaled(5824, scale, 1024)
    hot_cells = min(n_cells // 4, 1024)  # BSP tree top levels
    rays_per_cpu = scaled(160, scale, 16)
    reads_per_ray = 20
    hot_reads = 16
    rng = random.Random(seed)

    layout = Layout(space)
    scene = layout.region("scene", n_cells * CELL_BYTES)
    frame = layout.region("framebuffer", cpus * rays_per_cpu * PIXEL_BYTES)
    tb = TraceBuilder(machine)

    stripe_pages_across_nodes(tb, scene, machine)
    for cpu in range(cpus):
        lo = cpu * rays_per_cpu
        tb.first_touch(
            cpu, (frame.elem(lo + r, PIXEL_BYTES) for r in range(rays_per_cpu))
        )
    tb.barrier()

    # Scene build: striped owners write every cell once (read-only after).
    cells_per_page = space.page_size // CELL_BYTES
    for page in range(scene.num_pages):
        cpu = (page % machine.nodes) * machine.cpus_per_node
        base = page * cells_per_page
        for c in range(base, min(base + cells_per_page, n_cells)):
            tb.write(cpu, scene.elem(c, CELL_BYTES), think=2)
    tb.barrier()

    # Render: each ray walks the BSP top then scattered scene cells.
    for cpu in range(cpus):
        lo = cpu * rays_per_cpu
        for r in range(rays_per_cpu):
            for k in range(reads_per_ray):
                if k < hot_reads:
                    c = rng.randrange(hot_cells)
                else:
                    c = hot_cells + rng.randrange(n_cells - hot_cells)
                tb.read(cpu, scene.elem(c, CELL_BYTES), think=3)
            tb.write(cpu, frame.elem(lo + r, PIXEL_BYTES), think=4)
    tb.barrier()

    return tb.build(
        "raytrace",
        description="ray tracing: read-only scene with a hot BSP-tree top",
        paper_input=PAPER_INPUT,
        scaled_input=f"{n_cells} scene cells, {cpus * rays_per_cpu} rays",
        cells=n_cells,
        rays=cpus * rays_per_cpu,
    )
