"""fft: complex 1-D radix-sqrt(n) six-step FFT (SPLASH-2).

Paper input: 64K points.  Scaled: 16K points arranged as a 128x128
matrix of complex doubles (16 bytes each).

Sharing behaviour preserved: the six-step FFT alternates local row FFTs
with all-to-all transposes.  Transposed data was freshly written by its
producer, so remote misses are coherence/cold misses — CC-NUMA needs
almost no block cache (the paper omits fft from Figure 5 because it has
*no* capacity refetches).  The transpose source spans every other
processor's rows: more distinct remote pages per node than S-COMA page
frames, so pure S-COMA pays an allocation storm every transpose (its
execution bar in Figure 6 is the tallest).
"""

from __future__ import annotations

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout, Region

ELEM_BYTES = 16  # one complex double

PAPER_INPUT = "64K points"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 42,
) -> Program:
    cpus = machine.total_cpus
    m = scaled(128, scale ** 0.5, cpus)  # matrix edge: m*m points
    m -= m % cpus
    rows_per_cpu = m // cpus
    row_bytes = m * ELEM_BYTES
    blocks_per_row = max(1, row_bytes // space.block_size)
    elems_per_block = space.block_size // ELEM_BYTES

    layout = Layout(space)
    a = layout.region("A", m * row_bytes)
    b = layout.region("B", m * row_bytes)
    tb = TraceBuilder(machine)

    def row_block(region: Region, row: int, blk: int) -> int:
        return region.addr(row * row_bytes + blk * space.block_size)

    # Init: each CPU owns the same row range of both matrices.
    for cpu in range(cpus):
        lo = cpu * rows_per_cpu
        for region in (a, b):
            tb.first_touch(
                cpu,
                (
                    row_block(region, r, k)
                    for r in range(lo, lo + rows_per_cpu)
                    for k in range(blocks_per_row)
                ),
            )
    tb.barrier()

    def fft_rows(region: Region) -> None:
        """Local row FFTs: one read-modify-write pass over own rows."""
        for cpu in range(cpus):
            lo = cpu * rows_per_cpu
            for r in range(lo, lo + rows_per_cpu):
                for k in range(blocks_per_row):
                    addr = row_block(region, r, k)
                    tb.read(cpu, addr, think=4)
                    tb.write(cpu, addr, think=4)
        tb.barrier()

    def transpose(src: Region, dst: Region) -> None:
        """All-to-all cache-blocked transpose.

        Each CPU gathers the column slab holding its destination rows:
        every source block is read exactly once (the real code blocks
        the loop for exactly this reason), so the phase generates pure
        producer-consumer traffic and no capacity refetches.
        """
        for cpu in range(cpus):
            lo = cpu * rows_per_cpu
            for rblk in range(
                lo // elems_per_block,
                (lo + rows_per_cpu + elems_per_block - 1) // elems_per_block,
            ):
                for c in range(m):
                    tb.read(cpu, row_block(src, c, rblk), think=2)
                    if c % elems_per_block == elems_per_block - 1:
                        dst_blk = c // elems_per_block
                        for r in range(lo, lo + rows_per_cpu):
                            tb.write(cpu, row_block(dst, r, dst_blk), think=2)
        tb.barrier()

    # The six-step algorithm: transpose, FFT, transpose, twiddle+FFT,
    # transpose.  (Twiddle multiply is folded into the row FFTs.)
    transpose(a, b)
    fft_rows(b)
    transpose(b, a)
    fft_rows(a)
    transpose(a, b)

    return tb.build(
        "fft",
        description="complex 1-D radix-sqrt(n) six-step FFT",
        paper_input=PAPER_INPUT,
        scaled_input=f"{m * m} points ({m}x{m} matrix)",
        points=m * m,
    )
