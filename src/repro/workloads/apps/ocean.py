"""ocean: eddy-current ocean basin simulation (SPLASH-2, contiguous
partitions variant).

Paper input: 258x258 ocean.  Scaled: 128x128 grids, five working grids,
twenty red-black relaxation sweeps cycling over the grids.

Sharing behaviour preserved: ocean's grids are populated row-major
during initialization while the solver partitions them into 2-D
sub-blocks whose owners are scattered across the machine — so most of
the data a processor sweeps every iteration lives on pages homed
elsewhere.  The per-node remote *reuse* working set (a slice of five
grids plus boundaries) exceeds both the 32-KB block cache and the
320-KB page cache: CC-NUMA refetches on every revisit, S-COMA replaces
pages it will need again, and R-NUMA — relocating the pages that cross
the threshold, leaving the rest CC — outperforms both while all three
stay well above the ideal machine (Figure 6).
"""

from __future__ import annotations

from repro.common.addressing import AddressSpace
from repro.common.params import MachineParams
from repro.workloads.base import Program, TraceBuilder, scaled
from repro.workloads.layout import Layout, Region

from repro.workloads.apps import stripe_pages_across_nodes

ELEM_BYTES = 8

PAPER_INPUT = "258x258 ocean"


def build(
    machine: MachineParams,
    space: AddressSpace,
    scale: float = 1.0,
    seed: int = 11,
) -> Program:
    cpus = machine.total_cpus
    edge = scaled(128, scale ** 0.5, 64)
    n_grids = 5
    sweeps = scaled(30, scale, n_grids)
    elems_per_block = space.block_size // ELEM_BYTES

    # 2-D sub-block decomposition.  Owners are assigned column-major
    # (cpu = band + column * bands) so each node's four CPUs sweep four
    # *different* row bands — spreading the node's working set across
    # the grids, as the paper's 2-D partitions do.
    cpu_rows = 8
    cpu_cols = cpus // cpu_rows
    sub_rows = edge // cpu_rows
    sub_cols = edge // cpu_cols

    layout = Layout(space)
    grids = [
        layout.region(f"grid{g}", edge * edge * ELEM_BYTES) for g in range(n_grids)
    ]
    tb = TraceBuilder(machine)

    for grid in grids:
        stripe_pages_across_nodes(tb, grid, machine)
    tb.barrier()

    def block_addr(grid: Region, row: int, col_block: int) -> int:
        return grid.addr((row * edge + col_block * elems_per_block) * ELEM_BYTES)

    col_blocks_per_cpu = sub_cols // elems_per_block
    total_col_blocks = edge // elems_per_block

    def sweep(grid: Region, grid_above: Region) -> None:
        """One relaxation sweep: read-modify-write the own sub-block,
        read boundary rows/columns from neighbours, and sample the next
        grid (multigrid restriction) every few rows."""
        for cpu in range(cpus):
            band = cpu % cpu_rows
            col = cpu // cpu_rows
            r0 = band * sub_rows
            cb0 = col * col_blocks_per_cpu
            for cb in range(cb0, cb0 + col_blocks_per_cpu):
                if r0 > 0:
                    tb.read(cpu, block_addr(grid, r0 - 1, cb), think=2)
                if r0 + sub_rows < edge:
                    tb.read(cpu, block_addr(grid, r0 + sub_rows, cb), think=2)
            for r in range(r0, r0 + sub_rows):
                if cb0 > 0:
                    tb.read(cpu, block_addr(grid, r, cb0 - 1), think=2)
                if cb0 + col_blocks_per_cpu < total_col_blocks:
                    tb.read(cpu, block_addr(grid, r, cb0 + col_blocks_per_cpu), think=2)
                for cb in range(cb0, cb0 + col_blocks_per_cpu):
                    addr = block_addr(grid, r, cb)
                    tb.read(cpu, addr, think=3)
                    tb.write(cpu, addr, think=3)
                if r % 4 == 0:
                    tb.read(cpu, block_addr(grid_above, r // 2, cb0 // 2), think=2)
        tb.barrier()

    # Zig-zag over the multigrid hierarchy (down then back up), the way
    # a V-cycle revisits levels; this also keeps the page-access order
    # from being purely cyclic.
    period = 2 * n_grids - 2
    for s in range(sweeps):
        phase = s % period
        g = phase if phase < n_grids else period - phase
        grid = grids[g]
        grid_above = grids[(g + 1) % n_grids]
        sweep(grid, grid_above)

    return tb.build(
        "ocean",
        description="ocean relaxation: scattered 2-D sub-blocks over row-major pages",
        paper_input=PAPER_INPUT,
        scaled_input=f"{edge}x{edge} ocean, {n_grids} grids, {sweeps} sweeps",
        edge=edge,
        sweeps=sweeps,
    )
