"""Program/trace-builder infrastructure shared by all workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import TraceError
from repro.common.params import MachineParams
from repro.common.records import Access, Barrier, Trace


@dataclass
class Program:
    """A complete multiprocessor workload: one trace per CPU."""

    name: str
    traces: List[Trace]
    description: str = ""
    paper_input: str = ""
    scaled_input: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def cpu_count(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(
            1 for trace in self.traces for item in trace if isinstance(item, Access)
        )

    @property
    def barrier_count(self) -> int:
        if not self.traces:
            return 0
        return sum(1 for item in self.traces[0] if isinstance(item, Barrier))


class TraceBuilder:
    """Accumulates per-CPU traces with global barriers.

    Workload kernels call :meth:`read`/:meth:`write` as they execute and
    :meth:`barrier` at synchronization points; :meth:`build` returns the
    finished :class:`Program`.
    """

    def __init__(self, machine: MachineParams) -> None:
        self.machine = machine
        self.traces: List[Trace] = [[] for _ in range(machine.total_cpus)]
        self._next_barrier = 0

    @property
    def cpu_count(self) -> int:
        return len(self.traces)

    @property
    def node_count(self) -> int:
        return self.machine.nodes

    def read(self, cpu: int, addr: int, think: int = 2) -> None:
        self.traces[cpu].append(Access(addr, False, think))

    def write(self, cpu: int, addr: int, think: int = 2) -> None:
        self.traces[cpu].append(Access(addr, True, think))

    def barrier(self) -> int:
        """Append the next global barrier to every CPU's trace."""
        ident = self._next_barrier
        self._next_barrier += 1
        for trace in self.traces:
            trace.append(Barrier(ident))
        return ident

    def first_touch(self, cpu: int, addrs) -> None:
        """Initialization touches establishing first-touch homes.

        Each address is written once with no think time; call during the
        program's init phase, before the first barrier, touching every
        page exactly once (by the CPU that should become its home).
        """
        trace = self.traces[cpu]
        for addr in addrs:
            trace.append(Access(addr, True, 0))

    def build(
        self,
        name: str,
        description: str = "",
        paper_input: str = "",
        scaled_input: str = "",
        **metadata,
    ) -> Program:
        if self._next_barrier == 0:
            raise TraceError(
                f"program {name!r} has no barriers; kernels must emit at "
                "least the init barrier so placement is well-defined"
            )
        return Program(
            name=name,
            traces=self.traces,
            description=description,
            paper_input=paper_input,
            scaled_input=scaled_input,
            metadata=dict(metadata),
        )


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer workload parameter with a floor."""
    if scale <= 0:
        raise TraceError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(value * scale)))
