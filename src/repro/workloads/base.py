"""Program/trace-builder infrastructure shared by all workloads.

The builder is the hot path of workload generation: every data
reference an application kernel emits passes through :meth:`read`/
:meth:`write`.  It therefore packs references straight into the
columnar ``array('q')`` representation (see
:mod:`repro.common.records`) instead of allocating one dataclass per
reference, and maintains the access/barrier counters incrementally so
:attr:`Program.total_accesses`/:attr:`Program.barrier_count` are O(1).
"""

from __future__ import annotations

from array import array
from typing import List

from repro.common.errors import TraceError
from repro.common.params import MachineParams
from repro.common.records import (
    ADDR_SHIFT,
    MAX_ADDR,
    MAX_THINK,
    TraceView,
    new_column,
)
from repro.workloads.compile import CompiledProgram


class Program(CompiledProgram):
    """A complete multiprocessor workload: one packed column per CPU.

    The columnar :class:`~repro.workloads.compile.CompiledProgram` with
    its legacy object view (``program.traces`` yields Access/Barrier
    items lazily); kept under its historical name for the builder API.
    """


class TraceBuilder:
    """Accumulates per-CPU traces with global barriers.

    Workload kernels call :meth:`read`/:meth:`write` as they execute and
    :meth:`barrier` at synchronization points; :meth:`build` returns the
    finished :class:`Program`.  References are packed into per-CPU
    columns as they are emitted.
    """

    def __init__(self, machine: MachineParams) -> None:
        self.machine = machine
        self._columns: List[array] = [
            new_column() for _ in range(machine.total_cpus)
        ]
        self._access_counts: List[int] = [0] * machine.total_cpus
        self._barrier_ids: List[int] = []
        self._next_barrier = 0

    @property
    def cpu_count(self) -> int:
        return len(self._columns)

    @property
    def node_count(self) -> int:
        return self.machine.nodes

    @property
    def traces(self) -> List[TraceView]:
        """Live object views of the columns accumulated so far."""
        return [TraceView(c) for c in self._columns]

    @property
    def columns(self) -> List[array]:
        return self._columns

    def read(self, cpu: int, addr: int, think: int = 2) -> None:
        if not (0 <= addr <= MAX_ADDR and 0 <= think <= MAX_THINK):
            raise TraceError(
                f"reference ({addr:#x}, think={think}) outside the "
                f"encodable range (addr <= {MAX_ADDR:#x}, think <= {MAX_THINK})"
            )
        self._columns[cpu].append((addr << ADDR_SHIFT) | (think << 1))
        self._access_counts[cpu] += 1

    def write(self, cpu: int, addr: int, think: int = 2) -> None:
        if not (0 <= addr <= MAX_ADDR and 0 <= think <= MAX_THINK):
            raise TraceError(
                f"reference ({addr:#x}, think={think}) outside the "
                f"encodable range (addr <= {MAX_ADDR:#x}, think <= {MAX_THINK})"
            )
        self._columns[cpu].append((addr << ADDR_SHIFT) | (think << 1) | 1)
        self._access_counts[cpu] += 1

    def barrier(self) -> int:
        """Append the next global barrier to every CPU's trace."""
        ident = self._next_barrier
        self._next_barrier += 1
        word = -1 - ident
        for column in self._columns:
            column.append(word)
        self._barrier_ids.append(ident)
        return ident

    def first_touch(self, cpu: int, addrs) -> None:
        """Initialization touches establishing first-touch homes.

        Each address is written once with no think time; call during the
        program's init phase, before the first barrier, touching every
        page exactly once (by the CPU that should become its home).
        """
        column = self._columns[cpu]
        count = 0
        for addr in addrs:
            if not 0 <= addr <= MAX_ADDR:
                raise TraceError(
                    f"address {addr:#x} outside the encodable range "
                    f"[0, {MAX_ADDR:#x}]"
                )
            column.append((addr << ADDR_SHIFT) | 1)
            count += 1
        self._access_counts[cpu] += count

    def build(
        self,
        name: str,
        description: str = "",
        paper_input: str = "",
        scaled_input: str = "",
        **metadata,
    ) -> Program:
        """Finish the program, transferring buffer ownership to it.

        The builder resets to empty afterwards: the program's trusted
        counters describe exactly the handed-over columns, and appends
        after ``build`` can never desync them.
        """
        if self._next_barrier == 0:
            raise TraceError(
                f"program {name!r} has no barriers; kernels must emit at "
                "least the init barrier so placement is well-defined"
            )
        columns = self._columns
        access_counts = self._access_counts
        barrier_ids = self._barrier_ids
        total_cpus = self.machine.total_cpus
        self._columns = [new_column() for _ in range(total_cpus)]
        self._access_counts = [0] * total_cpus
        self._barrier_ids = []
        self._next_barrier = 0
        return Program(
            name=name,
            description=description,
            paper_input=paper_input,
            scaled_input=scaled_input,
            metadata=dict(metadata),
            columns=columns,
            access_counts=access_counts,
            barrier_ids=barrier_ids,
        )


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer workload parameter with a floor."""
    if scale <= 0:
        raise TraceError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(value * scale)))
