"""Simulation statistics.

The simulator increments counters as it models each event; the experiment
harness reads them back to build the paper's tables and figures.  Counters
are split per node (``NodeStats``) with machine-wide aggregation on the
registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(slots=True)
class NodeStats:
    """Event counters for one SMP node.

    Slotted: the engine bumps these counters on every miss, and slot
    descriptors make each increment measurably cheaper than a __dict__
    attribute store.
    """

    # L1 / intra-node
    l1_hits: int = 0
    l1_misses: int = 0
    local_fills: int = 0          # fills served by local memory / local caches
    cache_to_cache: int = 0       # intra-node cache-to-cache transfers

    # CC-NUMA path
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    block_cache_writebacks: int = 0

    # S-COMA path
    page_cache_hits: int = 0
    page_cache_misses: int = 0
    page_faults: int = 0
    page_allocations: int = 0
    page_replacements: int = 0
    blocks_flushed: int = 0
    tlb_shootdowns: int = 0

    # inter-node
    remote_fetches: int = 0
    refetches: int = 0            # capacity/conflict misses seen at the home
    coherence_misses: int = 0     # misses caused by inter-node invalidation
    invalidations_sent: int = 0   # invalidation messages the directory fanned
                                  # out on behalf of this node's requests

    # R-NUMA
    relocations: int = 0
    relocation_interrupts: int = 0

    # time
    busy_cycles: int = 0
    stall_cycles: int = 0
    barrier_wait_cycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (stable key order)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def reset(self) -> None:
        """Zero every counter in place (the StatsRegistry keeps a
        reference to this object, so it must not be replaced)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


@dataclass
class StatsRegistry:
    """Per-node counters plus machine-global accumulators."""

    nodes: List[NodeStats] = field(default_factory=list)
    barriers_crossed: int = 0

    @classmethod
    def for_nodes(cls, node_count: int) -> "StatsRegistry":
        return cls(nodes=[NodeStats() for _ in range(node_count)])

    def node(self, node_id: int) -> NodeStats:
        return self.nodes[node_id]

    def total(self, counter: str) -> int:
        """Sum of one counter across all nodes."""
        return sum(getattr(n, counter) for n in self.nodes)

    def as_dict(self) -> Dict[str, int]:
        """Machine-wide totals for every counter."""
        totals: Dict[str, int] = {}
        if self.nodes:
            for name in self.nodes[0].__dataclass_fields__:
                totals[name] = self.total(name)
        totals["barriers_crossed"] = self.barriers_crossed
        return totals
