"""Global physical address arithmetic.

The machine exposes a single global physical address space.  Workloads emit
plain integer addresses; this module slices them into blocks (coherence
units) and pages (allocation units).  Homes are *not* encoded in address
bits here — the paper encodes the node id in high-order bits, but for the
simulator it is simpler and equivalent to keep an explicit page -> home map
(built by the first-touch placement pass, see ``repro.osint.placement``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressSpace:
    """Block/page geometry of the global physical address space.

    Parameters
    ----------
    block_size:
        Coherence unit in bytes (the paper's machines use 32-64 byte
        lines; we default to 64).
    page_size:
        Allocation/translation unit in bytes (4 KB, typical of the era).
    """

    block_size: int = 64
    page_size: int = 4096

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.block_size):
            raise ConfigurationError(
                f"block_size must be a power of two, got {self.block_size}"
            )
        if not _is_power_of_two(self.page_size):
            raise ConfigurationError(
                f"page_size must be a power of two, got {self.page_size}"
            )
        if self.page_size < self.block_size:
            raise ConfigurationError(
                "page_size must be >= block_size "
                f"({self.page_size} < {self.block_size})"
            )

    @property
    def block_shift(self) -> int:
        """log2(block_size)."""
        return self.block_size.bit_length() - 1

    @property
    def page_shift(self) -> int:
        """log2(page_size)."""
        return self.page_size.bit_length() - 1

    @property
    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self.block_shift

    def page_of(self, addr: int) -> int:
        """Page number containing byte address ``addr``."""
        return addr >> self.page_shift

    def page_of_block(self, block: int) -> int:
        """Page number containing block number ``block``."""
        return block >> (self.page_shift - self.block_shift)

    def blocks_in_page(self, page: int) -> range:
        """All block numbers belonging to ``page``."""
        first = page << (self.page_shift - self.block_shift)
        return range(first, first + self.blocks_per_page)

    def block_base(self, block: int) -> int:
        """First byte address of block number ``block``."""
        return block << self.block_shift

    def page_base(self, page: int) -> int:
        """First byte address of page number ``page``."""
        return page << self.page_shift

    def block_offset_in_page(self, block: int) -> int:
        """Index of ``block`` within its page (0..blocks_per_page-1)."""
        return block & (self.blocks_per_page - 1)
