"""Shared building blocks: addressing, parameters, records, statistics.

Everything in this package is protocol-agnostic.  The simulator, the three
DSM protocols, and the workload generators all speak in terms of the types
defined here.
"""

from repro.common.addressing import AddressSpace
from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    TraceError,
)
from repro.common.params import (
    CacheParams,
    CostParams,
    MachineParams,
    SystemConfig,
)
from repro.common.records import Access, Barrier, TraceItem
from repro.common.stats import NodeStats, StatsRegistry

__all__ = [
    "Access",
    "AddressSpace",
    "Barrier",
    "CacheParams",
    "ConfigurationError",
    "CostParams",
    "MachineParams",
    "NodeStats",
    "ProtocolError",
    "ReproError",
    "StatsRegistry",
    "SystemConfig",
    "TraceError",
    "TraceItem",
]
