"""Machine, cache, and cost parameters (the paper's Table 2 and Section 4).

All costs are in processor cycles at 400 MHz, exactly as the paper reports
them:

======================  =====================
block operations        cost (cycles)
======================  =====================
SRAM access             8
DRAM access             56
local cache fill        69
remote fetch            376
======================  =====================

======================  =====================
page operations         cost (cycles)
======================  =====================
soft trap               2000   (5 us)
TLB shootdown           200    (0.5 us, hardware)
allocation/replacement  3000 ~ 11500
or relocation           (varies with blocks flushed)
======================  =====================

The SOFT variants (Figure 9) double the page-fault time to 10 us (4000
cycles) and use 5 us (2000 cycle) software TLB shootdowns via
inter-processor interrupts, making per-page operations roughly three times
more expensive.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.common.addressing import AddressSpace
from repro.common.errors import ConfigurationError

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class CostParams:
    """Latency/occupancy constants, in processor cycles.

    The per-page operation cost is decomposed as::

        page_op = soft_trap + tlb_shootdown + page_setup
                  + flush_per_block * blocks_flushed

    With the base constants below an allocation that flushes nothing costs
    3000 cycles and one that flushes a fully dirty 64-block page costs
    ~11500 cycles — the paper's 3000~11500 range.
    """

    sram_access: int = 8
    dram_access: int = 56
    local_fill: int = 69
    remote_fetch: int = 376
    network_latency: int = 100
    # Per-hop fabric costs, charged only on non-uniform topologies
    # (the paper's uniform point-to-point fabric has no internal links,
    # so these never touch a paper reproduction): each link on a
    # message's route adds link_latency cycles of wire time and holds
    # the link busy for link_occupancy cycles.  Defaults are a
    # plausible pipelined-router point — a ~5-hop route roughly
    # doubles the 100-cycle base wire latency.
    link_latency: int = 20
    link_occupancy: int = 8

    soft_trap: int = 2000
    tlb_shootdown: int = 200
    page_setup: int = 800
    flush_per_block: int = 133

    # Occupancy (resource busy time) for contention modeling.
    bus_occupancy: int = 20
    ni_occupancy: int = 24
    rad_occupancy: int = 30
    # Extra home-RAD occupancy per additional sharer invalidated on a
    # write-ownership grant.
    invalidate_per_sharer: int = 12
    barrier_cost: int = 400

    def __post_init__(self) -> None:
        for name in (
            "sram_access",
            "dram_access",
            "local_fill",
            "remote_fetch",
            "bus_occupancy",
            "ni_occupancy",
            "rad_occupancy",
            "link_latency",
            "link_occupancy",
            "soft_trap",
            "tlb_shootdown",
            "page_setup",
            "flush_per_block",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def page_op_cost(self, blocks_flushed: int) -> int:
        """Cost of a page allocation, replacement, or relocation.

        Parameters
        ----------
        blocks_flushed:
            Number of (dirty or cached) blocks that must be flushed back
            to the home node as part of the operation.
        """
        if blocks_flushed < 0:
            raise ConfigurationError("blocks_flushed must be non-negative")
        return (
            self.soft_trap
            + self.tlb_shootdown
            + self.page_setup
            + self.flush_per_block * blocks_flushed
        )

    @property
    def page_op_base(self) -> int:
        """Cost of a page operation that flushes no blocks."""
        return self.soft_trap + self.tlb_shootdown + self.page_setup

    def softened(self) -> "CostParams":
        """The Figure 9 'SOFT' variant of these costs.

        10 us page faults (4000 cycles) and 5 us software TLB shootdowns
        via inter-processor interrupts (2000 cycles).
        """
        return replace(self, soft_trap=4000, tlb_shootdown=2000)


BASE_COSTS = CostParams()
SOFT_COSTS = BASE_COSTS.softened()


@dataclass(frozen=True)
class CacheParams:
    """Per-node cache sizing.

    The paper's base system: 8-KB direct-mapped processor caches, a 32-KB
    block cache for CC-NUMA, a 320-KB page cache for S-COMA, and for
    R-NUMA a tiny 128-byte block cache plus the same 320-KB page cache.
    """

    l1_size: int = 8 * KB
    block_cache_size: int = 32 * KB
    page_cache_size: int = 320 * KB
    #: page-cache replacement policy: "lrm" (paper), "lru", or "fifo"
    page_replacement: str = "lrm"

    _REPLACEMENT_POLICIES = ("lrm", "lru", "fifo")

    def __post_init__(self) -> None:
        if self.l1_size <= 0:
            raise ConfigurationError("l1_size must be positive")
        if self.block_cache_size < 0:
            raise ConfigurationError("block_cache_size must be >= 0")
        if self.page_cache_size < 0:
            raise ConfigurationError("page_cache_size must be >= 0")
        if self.page_replacement not in self._REPLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown page_replacement {self.page_replacement!r}; "
                f"expected one of {self._REPLACEMENT_POLICIES}"
            )

    def l1_blocks(self, space: AddressSpace) -> int:
        return max(1, self.l1_size // space.block_size)

    def block_cache_blocks(self, space: AddressSpace) -> int:
        return max(0, self.block_cache_size // space.block_size)

    def page_cache_frames(self, space: AddressSpace) -> int:
        return max(0, self.page_cache_size // space.page_size)


@dataclass(frozen=True)
class DirectoryParams:
    """Sharer-set representation of the inter-node directory.

    The paper's machines are small enough that an exact full-map bitmask
    per block is free; at 256-1024 nodes the classic scalable encodings
    from the directory literature trade precision for state:

    - ``"fullmap"`` — one exact bit per node (the default, and
      bit-identical to the frozen oracle in :mod:`repro.sim.legacy`).
    - ``"limited"`` — Dir_i-style: up to ``pointers`` exact sharer
      entries per block.  On pointer overflow the ``overflow`` policy
      decides: ``"broadcast"`` saturates the entry so the next write
      invalidates every node (Dir_i_B), while ``"evict"``
      deterministically invalidates the lowest-numbered existing
      sharer to make room (Dir_i_NB-style pointer replacement).
    - ``"coarse"`` — coarse-vector: each sharer bit covers
      ``region_size`` consecutive nodes, so invalidations fan out to
      whole regions (Dir_i_CV_r's overflowed regime).

    Inexact representations obey a conservative equivalence contract
    (pinned by ``tests/property/test_directory_repr_differential.py``):
    they behave bit-identically to full-map while the sharer count
    stays within capacity (``pointers >= nodes``, or ``region_size ==
    1``), and may only ever *over*-invalidate — never under-invalidate
    — beyond it.
    """

    representation: str = "fullmap"
    #: hardware pointer count for ``"limited"``.
    pointers: int = 4
    #: overflow policy for ``"limited"``: "broadcast" or "evict".
    overflow: str = "broadcast"
    #: nodes per sharer bit for ``"coarse"``.
    region_size: int = 4

    _REPRESENTATIONS = ("fullmap", "limited", "coarse")
    _OVERFLOW_POLICIES = ("broadcast", "evict")

    def __post_init__(self) -> None:
        if self.representation not in self._REPRESENTATIONS:
            raise ConfigurationError(
                f"unknown directory representation {self.representation!r}; "
                f"expected one of {self._REPRESENTATIONS}"
            )
        if self.overflow not in self._OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown directory overflow policy {self.overflow!r}; "
                f"expected one of {self._OVERFLOW_POLICIES}"
            )
        if self.pointers < 1:
            raise ConfigurationError("directory pointers must be positive")
        if self.region_size < 1:
            raise ConfigurationError("directory region_size must be positive")


@dataclass(frozen=True)
class MachineParams:
    """Cluster shape: number of SMP nodes and processors per node."""

    nodes: int = 8
    cpus_per_node: int = 4

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("nodes must be positive")
        if self.cpus_per_node <= 0:
            raise ConfigurationError("cpus_per_node must be positive")

    @property
    def total_cpus(self) -> int:
        return self.nodes * self.cpus_per_node

    def node_of_cpu(self, cpu: int) -> int:
        if not 0 <= cpu < self.total_cpus:
            raise ConfigurationError(f"cpu id {cpu} out of range")
        return cpu // self.cpus_per_node


@dataclass(frozen=True)
class ObsParams:
    """Observability settings: event tracing and metrics sampling.

    Observability is *not* part of a system's identity: enabling it
    never changes simulation results (the hooks are observational-only,
    pinned by ``tests/property/test_obs_differential.py``), so the
    field is excluded from :func:`repro.experiments.runner.config_key`,
    from ``SystemConfig`` equality/hashing (``compare=False``), and
    from :func:`config_to_dict` payloads.  With both paths ``None``
    (the default) the instrumentation layer is structurally absent: no
    hook is installed, no obs module is imported, and the engines run
    the exact same code they run without this class existing — a
    contract gated by ``benchmarks/bench_engine.assert_obs_off_floor``.

    ``trace_path``
        Destination for a Chrome-trace-event JSON file (loadable in
        Perfetto / ``chrome://tracing``; timestamps are simulated
        cycles).  Tracks are one process per node, one thread per CPU.
    ``trace_categories``
        Which event categories to emit (subset of
        :data:`TRACE_CATEGORIES`): ``"miss"`` — one complete event per
        L1 miss (dense); ``"coherence"`` — inter-node directory
        transactions and invalidation fan-out; ``"page"`` — faults,
        allocations, replacements, relocations; ``"counter"`` —
        competitive-counter refetch ticks and threshold crossings.
    ``metrics_path``
        Destination for a JSONL counter time-series: one ``meta`` line,
        periodic ``sample`` lines, one ``final`` line (schema:
        ``repro/obs/schemas/metrics.schema.json``).
    ``metrics_interval``
        Simulated-cycle sampling period.  Samples are taken at miss
        boundaries (the only points where the sampled counters change),
        so an interval is honored at the first miss at-or-after its
        deadline.
    """

    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    trace_categories: Tuple[str, ...] = ("miss", "coherence", "page", "counter")
    metrics_interval: int = 100_000

    TRACE_CATEGORIES = ("miss", "coherence", "page", "counter")

    def __post_init__(self) -> None:
        # Tolerate (and normalize) a list from keyword construction.
        if not isinstance(self.trace_categories, tuple):
            object.__setattr__(
                self, "trace_categories", tuple(self.trace_categories)
            )
        for cat in self.trace_categories:
            if cat not in self.TRACE_CATEGORIES:
                raise ConfigurationError(
                    f"unknown trace category {cat!r}; "
                    f"expected a subset of {self.TRACE_CATEGORIES}"
                )
        if self.metrics_interval <= 0:
            raise ConfigurationError("metrics_interval must be positive")

    @property
    def enabled(self) -> bool:
        """Whether any instrumentation output is requested."""
        return self.trace_path is not None or self.metrics_path is not None


@dataclass(frozen=True)
class RetryPolicy:
    """Failure policy for the experiment executor's job fan-out.

    Like :class:`ObsParams`, these knobs are *execution* policy, not
    system identity: retrying, timing out, or backing off never changes
    what a simulation computes (backends are deterministic), only
    whether and when it is re-attempted.  They therefore live outside
    :class:`SystemConfig` entirely — no run key, store key, or stored
    payload ever includes them, so a sweep run with ``--retries 3`` and
    one run with none share the same store entries.

    ``retries``
        Extra attempts per job after the first, consumed by crashes and
        timeouts.  Engine-unavailability (a missing optional dependency)
        is never retried — re-running cannot install NumPy.
    ``job_timeout``
        Per-job wall-clock deadline in seconds.  A job past it is
        declared hung: its worker pool is recycled (the only way to
        reclaim a stuck worker) and the job is retried or recorded as
        failed.  Setting it forces the pool path even with one worker,
        since an in-process job cannot be preempted.
    ``backoff``
        Base for exponential backoff between a job's attempts, with
        deterministic per-(job, attempt) jitter derived from the run
        key — no global random state (see
        :func:`repro.experiments.executor.backoff_delay`).
    ``fail_fast``
        Abort the sweep on the first *permanently* failed job (its
        retry budget spent) instead of recording it and finishing the
        rest (the default, ``--keep-going``).
    """

    retries: int = 0
    job_timeout: Optional[float] = None
    backoff: float = 0.5
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError("retries must be non-negative")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigurationError("job_timeout must be positive")
        if self.backoff < 0:
            raise ConfigurationError("backoff must be non-negative")

    @property
    def max_attempts(self) -> int:
        """Total attempts a crashing/hanging job may consume."""
        return self.retries + 1


# Process-wide default engine backend, resolved into any SystemConfig
# constructed with engine="default".  ``reproduce --engine`` flips this
# once, up front, so every config the sweep's figure/table modules
# build — jobs and render-phase lookups alike — lands on one backend
# and one set of store keys.
_default_engine = "runahead"


def set_default_engine(engine: str) -> str:
    """Set the process default engine backend; returns the previous one.

    Only configs constructed with ``engine="default"`` (the field
    default) are affected, and only from this call onward; explicit
    ``engine=`` arguments and already-built configs keep their value.
    """
    global _default_engine
    if engine not in SystemConfig._ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {SystemConfig._ENGINES}"
        )
    previous = _default_engine
    _default_engine = engine
    return previous


@dataclass(frozen=True)
class SystemConfig:
    """A complete system description handed to the simulator.

    ``protocol`` selects the remote-caching strategy:

    - ``"ccnuma"``  — block cache only (Section 2.1)
    - ``"scoma"``   — page cache only (Section 2.2)
    - ``"rnuma"``   — reactive hybrid (Section 3)
    - ``"ideal"``   — CC-NUMA with an infinite block cache, the
      normalization baseline of every figure in the paper.

    ``topology`` selects the inter-node fabric shape (see
    :mod:`repro.interconnect.topology`).  ``"uniform"`` — the paper's
    constant-latency point-to-point network — is the default and is
    bit-identical to the pre-topology model; ``"ring"``, ``"mesh"``,
    ``"torus"``, and ``"fattree"`` add hop-dependent latency and
    per-link contention governed by ``costs.link_latency`` /
    ``costs.link_occupancy``.

    ``engine`` selects the simulation engine backend (see
    :mod:`repro.sim.factory`):

    - ``"runahead"`` — the drain-loop scheduler, the production default;
    - ``"reference"`` — the frozen classic loop, the differential oracle;
    - ``"vector"``    — the NumPy batch-vectorized epoch engine
      (requires the optional ``[vector]`` extra);
    - ``"specialized"`` — run-ahead's scheduler with a miss path
      partially evaluated (generated and compiled) per configuration.

    All four are bit-identical by contract (the differential property
    suites pin it), so the choice affects wall time only; it still
    participates in the result-store identity because stored timings
    must be attributable to the backend that produced them.  The
    literal ``"default"`` resolves to the process-wide default engine
    (:func:`set_default_engine`), which ``reproduce --engine`` uses to
    steer every config a sweep constructs.
    """

    protocol: str = "rnuma"
    machine: MachineParams = field(default_factory=MachineParams)
    caches: CacheParams = field(default_factory=CacheParams)
    costs: CostParams = field(default_factory=CostParams)
    space: AddressSpace = field(default_factory=AddressSpace)
    topology: str = "uniform"
    #: inter-node directory sharer-set representation; the default
    #: exact full-map is bit-identical to the pre-directory-knob model.
    directory: DirectoryParams = field(default_factory=DirectoryParams)
    relocation_threshold: int = 64
    #: R-NUMA relocation implementation (Section 3.2's two designs):
    #: "local" — an aggressive implementation moves the blocks the node
    #: already holds straight into the page-cache frame (bound ~2);
    #: "flush" — a less aggressive one flushes them home and refetches
    #: on demand, making C_relocate ~ C_allocate (bound ~3).
    relocation_mode: str = "local"
    #: simulation engine backend; "default" resolves at construction to
    #: the process default (normally "runahead").
    engine: str = "default"
    #: observability settings (event tracing / metrics sampling).
    #: Excluded from equality, hashing, run keys, and serialized
    #: payloads: instrumentation never changes what a run computes,
    #: only what it additionally writes.
    obs: ObsParams = field(default_factory=ObsParams, compare=False)

    _PROTOCOLS = ("ccnuma", "scoma", "rnuma", "ideal")
    _ENGINES = ("runahead", "reference", "vector", "specialized")
    # Mirrors repro.interconnect.topology.TOPOLOGIES (params cannot
    # import it without a package-init cycle); tests/test_topology.py
    # asserts the two stay in sync.
    _TOPOLOGIES = ("uniform", "ring", "mesh", "torus", "fattree")
    _RELOCATION_MODES = ("local", "flush")

    def __post_init__(self) -> None:
        if self.protocol not in self._PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; "
                f"expected one of {self._PROTOCOLS}"
            )
        if self.topology not in self._TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {self._TOPOLOGIES}"
            )
        if self.relocation_threshold <= 0:
            raise ConfigurationError("relocation_threshold must be positive")
        if self.relocation_mode not in self._RELOCATION_MODES:
            raise ConfigurationError(
                f"unknown relocation_mode {self.relocation_mode!r}; "
                f"expected one of {self._RELOCATION_MODES}"
            )
        if self.engine == "default":
            object.__setattr__(self, "engine", _default_engine)
        if self.engine not in self._ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {self._ENGINES}"
            )

    def with_engine(self, engine: str) -> "SystemConfig":
        """A copy of this config running on a different engine backend."""
        return replace(self, engine=engine)

    def with_obs(self, obs: ObsParams) -> "SystemConfig":
        """A copy of this config with different observability settings.

        Identity-preserving: the copy compares and hashes equal to the
        original and produces bit-identical results.
        """
        return replace(self, obs=obs)

    def with_protocol(self, protocol: str, **overrides) -> "SystemConfig":
        """A copy of this config running a different protocol.

        Keyword overrides are applied with :func:`dataclasses.replace`.
        """
        return replace(self, protocol=protocol, **overrides)


def base_ccnuma_config() -> SystemConfig:
    """Paper base CC-NUMA: 32-KB block cache."""
    return SystemConfig(protocol="ccnuma", caches=CacheParams(block_cache_size=32 * KB))


def base_scoma_config() -> SystemConfig:
    """Paper base S-COMA: 320-KB page cache."""
    return SystemConfig(protocol="scoma", caches=CacheParams(page_cache_size=320 * KB))


def base_rnuma_config(threshold: int = 64) -> SystemConfig:
    """Paper base R-NUMA: 128-byte block cache, 320-KB page cache, T=64."""
    return SystemConfig(
        protocol="rnuma",
        caches=CacheParams(block_cache_size=128, page_cache_size=320 * KB),
        relocation_threshold=threshold,
    )


def ideal_config() -> SystemConfig:
    """CC-NUMA with an effectively infinite block cache."""
    return SystemConfig(protocol="ideal")


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """A JSON-safe plain-dict form of a :class:`SystemConfig`.

    Observability settings are omitted: they are not part of a
    system's identity (results are bit-identical with or without
    them), so stored payloads stay byte-identical across traced and
    untraced runs of the same configuration.
    """
    data = asdict(config)
    data.pop("obs", None)
    return data


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    Validation reruns in each dataclass ``__post_init__``, so a tampered
    payload raises :class:`ConfigurationError` rather than producing a
    half-valid config.
    """
    return SystemConfig(
        protocol=data["protocol"],
        machine=MachineParams(**data["machine"]),
        caches=CacheParams(**data["caches"]),
        costs=CostParams(**data["costs"]),
        space=AddressSpace(**data["space"]),
        # Absent in payloads serialized before the topology subsystem.
        topology=data.get("topology", "uniform"),
        # Absent in payloads serialized before the directory knob.
        directory=DirectoryParams(**data.get("directory", {})),
        relocation_threshold=data["relocation_threshold"],
        relocation_mode=data["relocation_mode"],
        # Absent in payloads serialized before engine selection; those
        # results were produced by the then-only run-ahead backend.
        engine=data.get("engine", "runahead"),
    )
