"""Exception hierarchy for the R-NUMA reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine, cache, or experiment configuration."""


class ProtocolError(ReproError):
    """An internal coherence-protocol invariant was violated.

    Raised when the directory, a cache, or a protocol engine observes a
    state transition that the MOESI/directory protocol does not permit.
    These indicate bugs, not user errors.
    """


class TraceError(ReproError):
    """A malformed workload trace (e.g. mismatched barriers)."""


class EngineUnavailableError(ReproError):
    """A requested engine backend cannot run in this environment.

    Raised when ``SystemConfig.engine`` selects a backend whose optional
    dependency is missing — e.g. ``"vector"`` without NumPy installed
    (``pip install .[vector]``).  The default ``"runahead"`` backend has
    no optional dependencies and never raises this.
    """
