"""Exception hierarchy for the R-NUMA reproduction library."""

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine, cache, or experiment configuration."""


class ProtocolError(ReproError):
    """An internal coherence-protocol invariant was violated.

    Raised when the directory, a cache, or a protocol engine observes a
    state transition that the MOESI/directory protocol does not permit.
    These indicate bugs, not user errors.
    """


class TraceError(ReproError):
    """A malformed workload trace (e.g. mismatched barriers)."""


class FaultInjected(ReproError):
    """A deterministic injected fault fired (see :mod:`repro.faults`).

    Raised only when an injection point armed through the
    ``REPRO_FAULTS`` environment variable fires; production runs never
    construct it.  Worker-side injections surface as ordinary job
    crashes; store-side injections simulate torn writes and writer
    death, so :meth:`ResultStore.save` deliberately does *not* clean up
    its temp file when this escapes — that is the crash being modeled.
    """


class EngineUnavailableError(ReproError):
    """A requested engine backend cannot run in this environment.

    Raised when ``SystemConfig.engine`` selects a backend whose optional
    dependency is missing — e.g. ``"vector"`` without NumPy installed
    (``pip install .[vector]``).  The default ``"runahead"`` backend has
    no optional dependencies and never raises this.

    ``reason`` carries the short human-readable cause — the same string
    the CLI ``engines`` listing shows (e.g. ``"NumPy not installed"``) —
    while the message keeps the full remediation text.
    """

    def __init__(self, message: str, reason: Optional[str] = None) -> None:
        super().__init__(message)
        #: Short cause, matching repro.sim.factory.engine_unavailable_reason.
        self.reason = reason if reason is not None else message
