"""Trace records: the items workload generators emit.

A per-processor trace is a list of :class:`TraceItem`.  There are two
kinds:

- :class:`Access` — a data reference: byte address, read/write, and the
  number of compute ("think") cycles the processor spends *before* issuing
  it.  Think cycles model the instruction stream between memory references
  so that memory-system stalls are diluted realistically.
- :class:`Barrier` — a global synchronization point.  All processors in
  the machine must reach barrier *k* before any may proceed.  Barriers are
  identified by their ordinal position; generators must emit the same
  sequence of barrier ids on every processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union


@dataclass(frozen=True)
class Access:
    """A single data reference issued by one processor."""

    addr: int
    is_write: bool = False
    think: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"address must be non-negative, got {self.addr}")
        if self.think < 0:
            raise ValueError(f"think cycles must be non-negative, got {self.think}")


@dataclass(frozen=True)
class Barrier:
    """A global barrier; ``ident`` orders barriers within the program."""

    ident: int

    def __post_init__(self) -> None:
        if self.ident < 0:
            raise ValueError(f"barrier id must be non-negative, got {self.ident}")


TraceItem = Union[Access, Barrier]
Trace = List[TraceItem]
