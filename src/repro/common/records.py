"""Trace records and the columnar trace encoding.

A per-processor trace is conceptually a sequence of :class:`TraceItem`.
There are two kinds:

- :class:`Access` — a data reference: byte address, read/write, and the
  number of compute ("think") cycles the processor spends *before* issuing
  it.  Think cycles model the instruction stream between memory references
  so that memory-system stalls are diluted realistically.
- :class:`Barrier` — a global synchronization point.  All processors in
  the machine must reach barrier *k* before any may proceed.  Barriers are
  identified by their ordinal position; generators must emit the same
  sequence of barrier ids on every processor.

Columnar encoding
-----------------

Storing millions of references as frozen dataclasses costs ~100 bytes
and one allocation each.  The pipeline therefore keeps traces as
*columns*: one ``array('q')`` of packed 64-bit words per processor,
8 bytes per reference, contiguous and cheap to pickle to executor
workers.  The word layout:

- an :class:`Access` packs to a non-negative word
  ``(addr << ADDR_SHIFT) | (think << 1) | is_write`` — 42 address bits
  (4 TB), 20 think bits, 1 write bit;
- a :class:`Barrier` packs to the negative word ``-(ident + 1)``, so the
  sign bit doubles as the kind discriminator and the engine's hot loop
  classifies an item with a single comparison.

:class:`TraceView` adapts a column back to the legacy object sequence
lazily, so existing code (and tests) that iterate ``program.traces``
keep seeing :class:`Access`/:class:`Barrier` instances without the
column ever being materialized as objects.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

from repro.common.errors import TraceError


@dataclass(frozen=True)
class Access:
    """A single data reference issued by one processor."""

    addr: int
    is_write: bool = False
    think: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"address must be non-negative, got {self.addr}")
        if self.think < 0:
            raise ValueError(f"think cycles must be non-negative, got {self.think}")


@dataclass(frozen=True)
class Barrier:
    """A global barrier; ``ident`` orders barriers within the program."""

    ident: int

    def __post_init__(self) -> None:
        if self.ident < 0:
            raise ValueError(f"barrier id must be non-negative, got {self.ident}")


TraceItem = Union[Access, Barrier]
Trace = List[TraceItem]

# -- packed-word layout ------------------------------------------------

#: bits below the address field: 20 think bits + 1 write bit.
THINK_BITS = 20
ADDR_SHIFT = THINK_BITS + 1
THINK_MASK = (1 << THINK_BITS) - 1
#: largest encodable byte address (42 bits: 4 TB) and think time.
MAX_ADDR = (1 << (63 - ADDR_SHIFT)) - 1
MAX_THINK = THINK_MASK

#: typecode of a trace column; one signed 64-bit word per item.
COLUMN_TYPECODE = "q"


def encode_access(addr: int, is_write: bool, think: int) -> int:
    """Pack one data reference into a non-negative 64-bit word."""
    if not 0 <= addr <= MAX_ADDR:
        raise TraceError(
            f"address {addr:#x} outside the encodable range [0, {MAX_ADDR:#x}]"
        )
    if not 0 <= think <= MAX_THINK:
        raise TraceError(
            f"think time {think} outside the encodable range [0, {MAX_THINK}]"
        )
    return (addr << ADDR_SHIFT) | (think << 1) | (1 if is_write else 0)


def encode_barrier(ident: int) -> int:
    """Pack one barrier into a negative word (sign bit = kind)."""
    if ident < 0:
        raise TraceError(f"barrier id must be non-negative, got {ident}")
    return -1 - ident


def decode_item(word: int) -> TraceItem:
    """The :class:`Access`/:class:`Barrier` a packed word represents."""
    if word < 0:
        return Barrier(-1 - word)
    return Access(word >> ADDR_SHIFT, bool(word & 1), (word >> 1) & THINK_MASK)


def new_column() -> array:
    """An empty trace column."""
    return array(COLUMN_TYPECODE)


class TraceView(_SequenceABC):
    """Read-only object view of one packed trace column.

    Indexing and iteration decode words to :class:`Access`/:class:`Barrier`
    on demand; the column itself stays the storage.  Views compare equal
    to other views over equal columns (word-wise, at C speed) and to
    plain item sequences element-wise, which keeps legacy tests and
    call sites working unchanged.
    """

    __slots__ = ("_column",)

    def __init__(self, column: array) -> None:
        self._column = column

    @property
    def column(self) -> array:
        """The underlying packed column (shared, not a copy)."""
        return self._column

    def __len__(self) -> int:
        return len(self._column)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [decode_item(word) for word in self._column[index]]
        return decode_item(self._column[index])

    def __iter__(self):
        return map(decode_item, self._column)

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceView):
            return self._column == other._column
        if isinstance(other, (list, tuple)):
            return len(self._column) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self):
        raise TypeError("TraceView is unhashable (it wraps a mutable column)")

    def __repr__(self) -> str:
        return f"TraceView({len(self._column)} items)"


def compile_trace(items: Iterable[object]) -> array:
    """Pack one processor's Access/Barrier sequence into a column.

    Anything other than an :class:`Access`/:class:`Barrier` raises
    :class:`TraceError` — already-packed columns and views never reach
    this function (:func:`as_columns` passes them through untouched).
    """
    column = new_column()
    append = column.append
    for item in items:
        if isinstance(item, Access):
            # Inlined encode_access: Access.__post_init__ already
            # guarantees non-negative fields, so only the upper bounds
            # need checking on this hot conversion path.
            addr = item.addr
            think = item.think
            if addr > MAX_ADDR or think > MAX_THINK:
                encode_access(addr, item.is_write, think)  # raises
            append((addr << ADDR_SHIFT) | (think << 1) | (1 if item.is_write else 0))
        elif isinstance(item, Barrier):
            append(-1 - item.ident)
        else:
            raise TraceError(f"unknown trace item: {item!r}")
    return column


def column_profile(column: array) -> Tuple[int, int, int]:
    """``(accesses, think_cycles, runs)`` of one packed trace column.

    ``runs`` counts barrier-free access stretches.  This is the single
    source of the scan both :meth:`repro.workloads.compile.
    CompiledProgram.per_cpu_profile` (memoized) and the engine's
    raw-column fallback use for their analytic hit/busy accounting —
    the two must never drift apart.
    """
    accesses = 0
    think = 0
    runs = 0
    in_run = False
    for word in column:
        if word >= 0:
            accesses += 1
            think += (word >> 1) & THINK_MASK
            if not in_run:
                runs += 1
                in_run = True
        else:
            in_run = False
    return accesses, think, runs


def barrier_sequence(column: array) -> List[int]:
    """The ordered barrier ids a column crosses."""
    return [-1 - word for word in column if word < 0]


def validate_barrier_sequences(columns: Sequence[array]) -> List[int]:
    """Check every column passes the same barrier sequence; returns it.

    Mismatched sequences would deadlock the engine mid-run; validating
    at compile time turns that into an immediate :class:`TraceError`.
    """
    first: List[int] = barrier_sequence(columns[0]) if columns else []
    for cpu, column in enumerate(columns):
        seq = barrier_sequence(column) if cpu else first
        if seq != first:
            raise TraceError(
                f"cpu {cpu} barrier sequence {seq[:8]}... does not match cpu 0"
            )
    return first


#: LRU memo of column sets already barrier-validated, keyed by the
#: identity of every column.  The values hold strong references to the
#: columns themselves, which pins their ids for as long as an entry
#: lives — a recycled id can therefore never alias a dead entry.  The
#: memo is small (a sweep replays one program across a handful of
#: protocols) and assumes columns are not mutated after validation,
#: the same contract :class:`~repro.workloads.compile.CompiledProgram`
#: already relies on.
_VALIDATED_MEMO: "OrderedDict[Tuple[int, ...], List[array]]" = OrderedDict()
_VALIDATED_MEMO_SIZE = 8


def ensure_barriers_validated(columns: Sequence[array]) -> None:
    """:func:`validate_barrier_sequences`, memoized on column identity.

    The engine calls this once per run for input it cannot trust; a
    sweep that replays the same columns across every protocol pays the
    O(total refs) validation scan only the first time.
    """
    key = tuple(map(id, columns))
    memo = _VALIDATED_MEMO
    if key in memo:
        memo.move_to_end(key)
        return
    validate_barrier_sequences(columns)
    memo[key] = list(columns)
    if len(memo) > _VALIDATED_MEMO_SIZE:
        memo.popitem(last=False)


def as_columns(traces) -> Tuple[List[array], bool]:
    """Normalize any trace representation to a list of packed columns.

    Accepts a compiled program (anything with a ``columns`` attribute),
    a sequence of columns/:class:`TraceView` — passed through without
    copying — or legacy per-CPU Access/Barrier sequences, which are
    packed here.  Returns ``(columns, converted)``.  Barrier-sequence
    consistency is *not* checked here: callers that cannot trust their
    input (the engine, for anything but a compiled program) run
    :func:`validate_barrier_sequences` on the result.
    """
    ready = getattr(traces, "columns", None)
    if ready is not None:
        return list(ready), False
    columns: List[array] = []
    converted = False
    for trace in traces:
        if isinstance(trace, array):
            columns.append(trace)
        elif isinstance(trace, TraceView):
            columns.append(trace.column)
        else:
            columns.append(compile_trace(trace))
            converted = True
    return columns, converted
