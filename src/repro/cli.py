"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the workload suite (Table 3).
``topologies``
    Show the interconnect topologies (links, mean/max hops per size).
``directories``
    Show the directory sharer-set representations and their knobs.
``engines``
    Show the engine backends and whether each can run here.
``run APP``
    Simulate one application under one or all protocols, optionally on
    a non-uniform interconnect topology (``--topology``,
    ``--link-latency``, ``--link-occupancy``), with a scalable
    directory representation (``--directory``, ``--dir-pointers``,
    ``--dir-overflow``, ``--dir-region``), and/or on a non-default
    engine backend (``--engine``).
``trace-stats APP``
    Inspect an application's compiled trace: per-CPU reference counts,
    barriers, pages touched, and the packed-buffer footprint.
``figure {5,6,7,8,9}``
    Regenerate a paper figure.
``table {1,2,3,4}``
    Regenerate a paper table.
``ablation {relocation,replacement,placement}``
    Run one of the design-choice ablations.
``reproduce``
    Regenerate every figure and table (plus the ablations and the
    cluster-size, topology, and directory extensions) in one sweep,
    fanned out over ``--jobs`` worker processes and backed by the
    persistent result store, so a second invocation does near-zero
    simulation work.  ``--heartbeat`` streams per-job progress,
    ``--profile`` breaks down where the wall time went, and a run
    manifest is written next to the stored results.
``report FILE``
    Summarize a trace (``run --trace``) or metrics (``run --metrics``)
    file; ``--validate`` also checks it against the checked-in schema.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.common.addressing import AddressSpace
from repro.common.params import (
    DirectoryParams,
    ObsParams,
    SystemConfig,
    base_ccnuma_config,
    base_rnuma_config,
    base_scoma_config,
    ideal_config,
    set_default_engine,
)
from repro.experiments import (
    compute_directory_scaling,
    compute_figure5,
    compute_figure6,
    compute_figure7,
    compute_figure8,
    compute_figure9,
    compute_placement_ablation,
    compute_relocation_ablation,
    compute_replacement_ablation,
    compute_scaling,
    compute_table4,
    compute_topology_scaling,
    directory_scaling_jobs,
    figure5_jobs,
    figure6_jobs,
    figure7_jobs,
    figure8_jobs,
    figure9_jobs,
    format_ablation,
    format_directory_scaling,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_scaling,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_topology_scaling,
    placement_ablation_jobs,
    relocation_ablation_jobs,
    replacement_ablation_jobs,
    scaling_jobs,
    table4_jobs,
    topology_scaling_jobs,
)
from repro.experiments.executor import Executor, ResultStore, default_store_dir
from repro.experiments.runner import ResultCache
from repro.interconnect.routing import routing_table_for
from repro.interconnect.topology import TOPOLOGIES, topology_names
from repro.sim.engine import simulate
from repro.sim.factory import engine_backends
from repro.workloads.registry import APPLICATIONS, build_program, workload_names

_PROTOCOL_CONFIGS = {
    "ideal": ideal_config,
    "ccnuma": base_ccnuma_config,
    "scoma": base_scoma_config,
    "rnuma": base_rnuma_config,
}

_FIGURES = {
    "5": (figure5_jobs, compute_figure5, format_figure5),
    "6": (figure6_jobs, compute_figure6, format_figure6),
    "7": (figure7_jobs, compute_figure7, format_figure7),
    "8": (figure8_jobs, compute_figure8, format_figure8),
    "9": (figure9_jobs, compute_figure9, format_figure9),
}

_ABLATIONS = {
    "relocation": (relocation_ablation_jobs, compute_relocation_ablation),
    "replacement": (replacement_ablation_jobs, compute_replacement_ablation),
    "placement": (placement_ablation_jobs, compute_placement_ablation),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the simulation fan-out (default: 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "persistent result-store directory (default: "
            "$REPRO_STORE_DIR or ~/.cache/repro-rnuma)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="skip the on-disk result store (in-memory cache only)",
    )


def _make_executor(args: argparse.Namespace) -> Executor:
    store = None
    if not args.no_store:
        root = Path(args.store) if args.store else default_store_dir()
        try:
            store = ResultStore(root)
        except OSError as exc:
            raise SystemExit(f"repro: cannot use result store {root}: {exc}")
    return Executor(workers=args.jobs, cache=ResultCache(), store=store)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reactive NUMA (ISCA 1997) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the workload suite (Table 3)")

    topo_p = sub.add_parser(
        "topologies", help="show the interconnect topologies"
    )
    topo_p.add_argument(
        "--nodes",
        type=_positive_int,
        nargs="*",
        default=[4, 8, 16],
        help="node counts to tabulate hop statistics for (default: 4 8 16)",
    )

    run_p = sub.add_parser("run", help="simulate one application")
    run_p.add_argument("app", choices=workload_names())
    run_p.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOL_CONFIGS) + ["all"],
        default="all",
    )
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument(
        "--threshold", type=int, default=64, help="R-NUMA relocation threshold"
    )
    run_p.add_argument(
        "--topology",
        choices=topology_names(),
        default="uniform",
        help="interconnect topology (default: uniform, the paper's fabric)",
    )
    run_p.add_argument(
        "--link-latency",
        type=int,
        default=None,
        metavar="CYCLES",
        help="per-hop link latency on non-uniform topologies",
    )
    run_p.add_argument(
        "--link-occupancy",
        type=int,
        default=None,
        metavar="CYCLES",
        help="per-link busy time on non-uniform topologies",
    )
    run_p.add_argument(
        "--directory",
        choices=DirectoryParams._REPRESENTATIONS,
        default="fullmap",
        help="directory sharer-set representation (default: fullmap, exact)",
    )
    run_p.add_argument(
        "--dir-pointers",
        type=_positive_int,
        default=4,
        metavar="N",
        help="pointer slots for --directory limited (default: 4)",
    )
    run_p.add_argument(
        "--dir-overflow",
        choices=DirectoryParams._OVERFLOW_POLICIES,
        default="broadcast",
        help="limited-pointer overflow policy (default: broadcast)",
    )
    run_p.add_argument(
        "--dir-region",
        type=_positive_int,
        default=4,
        metavar="N",
        help="nodes per bit for --directory coarse (default: 4)",
    )
    run_p.add_argument(
        "--engine",
        choices=SystemConfig._ENGINES,
        default="runahead",
        help="engine backend (default: runahead; vector needs NumPy)",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome-trace-event JSON coherence trace (open in "
            "Perfetto; with --protocol all, one file per protocol with "
            "the protocol name suffixed)"
        ),
    )
    run_p.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "write a JSONL counter time-series (suffixed per protocol "
            "like --trace)"
        ),
    )
    run_p.add_argument(
        "--trace-categories",
        nargs="+",
        choices=ObsParams.TRACE_CATEGORIES,
        default=None,
        metavar="CAT",
        help=(
            "trace event categories to keep (default: all of "
            + " ".join(ObsParams.TRACE_CATEGORIES)
            + ")"
        ),
    )
    run_p.add_argument(
        "--metrics-interval",
        type=_positive_int,
        default=100_000,
        metavar="CYCLES",
        help="simulated cycles between metrics samples (default: 100000)",
    )

    sub.add_parser(
        "directories", help="show the directory sharer-set representations"
    )

    sub.add_parser(
        "engines", help="show the engine backends and their availability"
    )

    ts_p = sub.add_parser(
        "trace-stats", help="inspect an application's compiled trace"
    )
    ts_p.add_argument("app", choices=workload_names())
    ts_p.add_argument("--scale", type=float, default=1.0)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("number", choices=sorted(_FIGURES))
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--apps", nargs="*", default=None)
    _add_executor_args(fig_p)

    tab_p = sub.add_parser("table", help="regenerate a paper table")
    tab_p.add_argument("number", choices=["1", "2", "3", "4"])
    tab_p.add_argument("--scale", type=float, default=1.0)
    _add_executor_args(tab_p)

    abl_p = sub.add_parser("ablation", help="run a design-choice ablation")
    abl_p.add_argument("which", choices=sorted(_ABLATIONS))
    abl_p.add_argument("--scale", type=float, default=1.0)
    abl_p.add_argument("--apps", nargs="*", default=None)
    _add_executor_args(abl_p)

    rep_p = sub.add_parser(
        "reproduce",
        help="regenerate every figure and table in one deduplicated sweep",
    )
    rep_p.add_argument("--scale", type=float, default=1.0)
    rep_p.add_argument("--apps", nargs="*", default=None)
    rep_p.add_argument(
        "--engine",
        choices=SystemConfig._ENGINES,
        default="runahead",
        help=(
            "engine backend for the whole sweep (default: runahead; "
            "backends are bit-identical, so figures and tables do not "
            "change — only wall time and store provenance do)"
        ),
    )
    rep_p.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-time breakdown at the end of the sweep",
    )
    rep_p.add_argument(
        "--heartbeat",
        action="store_true",
        help="stream per-job progress to stderr as the sweep runs",
    )
    _add_executor_args(rep_p)

    report_p = sub.add_parser(
        "report", help="summarize a trace or metrics file"
    )
    report_p.add_argument("file", help="a --trace or --metrics output file")
    report_p.add_argument(
        "--validate",
        action="store_true",
        help="also validate the file against its checked-in schema",
    )

    return parser


def _cmd_list() -> None:
    print(f"{'application':<12} {'problem':<42} paper input")
    for name, (_, problem, paper_input) in APPLICATIONS.items():
        print(f"{name:<12} {problem:<42} {paper_input}")


def _cmd_topologies(args: argparse.Namespace) -> None:
    print(f"{'topology':<9} description")
    for name, cls in TOPOLOGIES.items():
        print(f"{name:<9} {cls.description}")
    print()
    header = f"{'topology':<9} {'nodes':>5} {'links':>5} {'mean hops':>9} {'max hops':>8}"
    print(header)
    for name in TOPOLOGIES:
        for nodes in args.nodes:
            table = routing_table_for(name, nodes)
            print(
                f"{name:<9} {nodes:>5} {table.link_count:>5} "
                f"{table.mean_hops():>9.2f} {table.max_hops():>8}"
            )


def _cmd_directories() -> None:
    rows = (
        ("fullmap", "exact bitmask, one bit per node (the seed model)"),
        ("limited", "i owner pointers (--dir-pointers); overflow either "
                    "broadcasts or evicts (--dir-overflow)"),
        ("coarse", "one bit per --dir-region nodes; invalidations hit "
                   "whole regions"),
    )
    print(f"{'representation':<15} behavior")
    for name, text in rows:
        print(f"{name:<15} {text}")


def _cmd_engines() -> None:
    print(f"{'engine':<12} {'requires':<24} {'summary':<50} available")
    for row in engine_backends():
        available = (
            "yes" if row["available"] else f"unavailable — {row['reason']}"
        )
        print(
            f"{row['name']:<12} {row['requires']:<24} "
            f"{row['summary']:<50} {available}"
        )


def _run_config_overrides(args: argparse.Namespace, config):
    """Apply the interconnect/directory knobs of ``run`` to a config."""
    if args.topology != "uniform":
        config = replace(config, topology=args.topology)
    costs = config.costs
    if args.link_latency is not None:
        costs = replace(costs, link_latency=args.link_latency)
    if args.link_occupancy is not None:
        costs = replace(costs, link_occupancy=args.link_occupancy)
    if costs is not config.costs:
        config = replace(config, costs=costs)
    if args.directory != "fullmap":
        config = replace(
            config,
            directory=DirectoryParams(
                representation=args.directory,
                pointers=args.dir_pointers,
                overflow=args.dir_overflow,
                region_size=args.dir_region,
            ),
        )
    if args.engine != config.engine:
        config = replace(config, engine=args.engine)
    return config


def _suffixed_path(path: str, name: str, multi: bool) -> str:
    """``trace.json`` -> ``trace.rnuma.json`` when several protocols
    share one ``--trace``/``--metrics`` flag (each run gets its own
    file; a single-protocol run keeps the path verbatim)."""
    if not multi:
        return path
    p = Path(path)
    return str(p.with_name(f"{p.stem}.{name}{p.suffix}" if p.suffix else f"{p.name}.{name}"))


def _run_obs_params(args: argparse.Namespace, name: str, multi: bool) -> ObsParams:
    """The ObsParams one ``run`` protocol leg should carry."""
    categories = (
        tuple(args.trace_categories)
        if args.trace_categories
        else ObsParams.TRACE_CATEGORIES
    )
    return ObsParams(
        trace_path=(
            _suffixed_path(args.trace, name, multi) if args.trace else None
        ),
        metrics_path=(
            _suffixed_path(args.metrics, name, multi) if args.metrics else None
        ),
        trace_categories=categories,
        metrics_interval=args.metrics_interval,
    )


def _cmd_run(args: argparse.Namespace) -> None:
    program = build_program(args.app, scale=args.scale)
    fabric = "" if args.topology == "uniform" else f" on {args.topology}"
    print(f"{args.app}: {program.scaled_input} "
          f"({program.total_accesses} accesses){fabric}\n")
    names = (
        list(_PROTOCOL_CONFIGS) if args.protocol == "all" else [args.protocol]
    )
    multi = len(names) > 1
    baseline = None
    for name in names:
        if name == "rnuma":
            config = base_rnuma_config(threshold=args.threshold)
        else:
            config = _PROTOCOL_CONFIGS[name]()
        config = _run_config_overrides(args, config)
        obs = _run_obs_params(args, name, multi)
        if obs.enabled:
            config = config.with_obs(obs)
        result = simulate(config, program)
        if baseline is None:
            baseline = result
        print(f"{name:<8} {result.exec_cycles:>12,} cycles "
              f"({result.normalized_to(baseline):.2f}x)  "
              f"refetches={result.total('refetches'):,} "
              f"relocations={result.total('relocations'):,}")
        for label, path in (("trace", obs.trace_path), ("metrics", obs.metrics_path)):
            if path:
                print(f"         {label} -> {path}", file=sys.stderr)


def _cmd_trace_stats(args: argparse.Namespace) -> None:
    """Per-CPU reference counts and the compiled-trace footprint."""
    space = AddressSpace()
    program = build_program(args.app, scale=args.scale)
    pages = program.pages_touched(space)
    runs = program.run_length_stats()
    print(f"{args.app}: {program.scaled_input or program.description}")
    print(f"  cpus            {program.cpu_count}")
    print(f"  accesses        {program.total_accesses:,}")
    print(f"  barriers        {program.barrier_count:,}")
    print(f"  pages touched   {len(pages):,}")
    print(f"  compiled size   {program.nbytes:,} bytes "
          f"(8 bytes/item, columnar)")
    print(f"  barrier-free runs {runs['runs']:,} "
          f"(mean {runs['mean_run_length']:,.0f} refs, "
          f"think {runs['mean_think_cycles']:.1f} cycles/ref)")
    print()
    print(f"  {'cpu':>4} {'references':>12} {'share':>7} {'think/ref':>10}")
    total = program.total_accesses or 1
    profile = program.per_cpu_profile()
    for cpu, count in enumerate(program.access_counts):
        _, think, _ = profile[cpu]
        per_ref = think / count if count else 0.0
        print(f"  {cpu:>4} {count:>12,} {count / total * 100:>6.1f}% "
              f"{per_ref:>10.1f}")


def _cmd_figure(args: argparse.Namespace) -> None:
    _, compute, render = _FIGURES[args.number]
    result = compute(scale=args.scale, apps=args.apps, executor=_make_executor(args))
    print(render(result))


def _cmd_table(args: argparse.Namespace) -> None:
    if args.number == "1":
        print(format_table1())
    elif args.number == "2":
        print(format_table2())
    elif args.number == "3":
        print(format_table3(scale=args.scale))
    else:
        print(
            format_table4(
                compute_table4(scale=args.scale, executor=_make_executor(args))
            )
        )


def _cmd_ablation(args: argparse.Namespace) -> None:
    _, compute = _ABLATIONS[args.which]
    result = compute(scale=args.scale, apps=args.apps, executor=_make_executor(args))
    print(format_ablation(result))


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.obs.report import report

    try:
        summary, errors = report(args.file, check=args.validate)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"repro: cannot report on {args.file}: {exc}")
    print(summary)
    if args.validate:
        if errors:
            print(f"\nschema violations ({len(errors)}):", file=sys.stderr)
            for error in errors[:20]:
                print(f"  {error}", file=sys.stderr)
            raise SystemExit(1)
        print("\nschema: valid")


def _cmd_reproduce(args: argparse.Namespace) -> None:
    """Full paper sweep: one deduplicated job set, one executor."""
    import time

    # The figure/table modules build their SystemConfigs internally, so
    # the backend choice rides on the process-wide default: every config
    # constructed below (including by the render-phase compute calls)
    # resolves it at construction into a concrete ``engine`` field,
    # which then travels to worker processes inside the pickled config.
    set_default_engine(args.engine)

    executor = _make_executor(args)
    if args.heartbeat:
        start = time.perf_counter()

        def _heartbeat(done: int, total: int, job, source: str) -> None:
            elapsed = time.perf_counter() - start
            print(
                f"  [{done:>4}/{total}] {elapsed:>7.1f}s "
                f"{job.app:<10} {job.config.protocol:<7} {source}",
                file=sys.stderr,
            )

        executor.progress = _heartbeat
    scale, apps = args.scale, args.apps

    # Enumerate every figure/table/ablation/extension simulation up
    # front so overlapping configurations are submitted exactly once.
    jobs = []
    for jobs_fn, _, _ in _FIGURES.values():
        jobs += jobs_fn(scale, apps)
    jobs += table4_jobs(scale, apps)
    for jobs_fn, _ in _ABLATIONS.values():
        jobs += jobs_fn(scale, apps)
    jobs += scaling_jobs(scale, apps)
    jobs += topology_scaling_jobs(scale, apps)
    jobs += directory_scaling_jobs(scale, apps)
    unique = len({job.key for job in jobs})
    print(
        f"reproduce: {len(jobs)} simulations, {unique} unique after "
        f"dedup, {args.jobs} worker(s)"
        + ("" if executor.store is None else f", store={executor.store.root}"),
        file=sys.stderr,
    )

    # Phase 1 — trace compile: warm the registry's compiled-program
    # cache (generation, packing, placement) so the simulate phase
    # measures simulation.  Only for jobs the cache/store cannot
    # satisfy — a warm-store rerun must stay trace-generation-free.
    t0 = time.perf_counter()
    pending = executor.missing(jobs)
    for app, machine, space in sorted(
        {(job.app, job.config.machine, job.config.space) for job in pending},
        key=lambda k: k[0],
    ):
        build_program(app, machine=machine, space=space, scale=scale)
    compile_s = time.perf_counter() - t0 - executor.store_seconds
    store_baseline = executor.store_seconds

    # Phase 2 — simulate (store I/O tracked separately by the executor).
    t0 = time.perf_counter()
    executor.run(jobs)
    simulate_s = time.perf_counter() - t0 - (
        executor.store_seconds - store_baseline
    )
    store_after_simulate = executor.store_seconds

    # Phase 3 — render.  All compute calls hit the warm executor.
    t0 = time.perf_counter()
    sections = [format_table1(), format_table2(), format_table3(scale=scale)]
    for number in sorted(_FIGURES):
        _, compute, render = _FIGURES[number]
        sections.append(render(compute(scale=scale, apps=apps, executor=executor)))
    sections.append(
        format_table4(compute_table4(scale=scale, apps=apps, executor=executor))
    )
    for which in sorted(_ABLATIONS):
        _, compute = _ABLATIONS[which]
        sections.append(
            format_ablation(compute(scale=scale, apps=apps, executor=executor))
        )
    sections.append(
        format_scaling(compute_scaling(scale=scale, apps=apps, executor=executor))
    )
    sections.append(
        format_topology_scaling(
            compute_topology_scaling(scale=scale, apps=apps, executor=executor)
        )
    )
    sections.append(
        format_directory_scaling(
            compute_directory_scaling(scale=scale, apps=apps, executor=executor)
        )
    )
    print("\n\n".join(sections))
    # Render-phase cache misses may hit the store too; keep that I/O in
    # the store row, not the render row.
    store_s = executor.store_seconds
    render_s = time.perf_counter() - t0 - (store_s - store_after_simulate)

    manifest = executor.write_manifest(
        jobs, extra={"command": "reproduce", "scale": scale}
    )
    if manifest is not None:
        print(f"reproduce: manifest -> {manifest}", file=sys.stderr)

    if args.profile:
        total = compile_s + simulate_s + store_s + render_s
        print("\nphase breakdown", file=sys.stderr)
        for name, seconds in (
            ("trace compile", compile_s),
            ("simulate", simulate_s),
            ("store read", executor.store_read_seconds),
            ("store write", executor.store_write_seconds),
            ("render", render_s),
        ):
            share = seconds / total * 100 if total else 0.0
            print(f"  {name:<14} {seconds:>8.2f}s {share:>5.1f}%", file=sys.stderr)
        simulated = [
            p for p in executor.job_profiles if p["source"] == "simulated"
        ]
        if simulated:
            slowest = sorted(
                simulated, key=lambda p: p["simulate_s"], reverse=True
            )[:5]
            print(
                f"\nslowest jobs ({len(simulated)} simulated; "
                "queue = wait for a worker)",
                file=sys.stderr,
            )
            for p in slowest:
                print(
                    f"  {p['app']:<10} {p['protocol']:<7} "
                    f"sim {p['simulate_s']:>7.2f}s  "
                    f"queue {p['queue_wait_s']:>6.2f}s  "
                    f"store {p['store_read_s'] + p['store_write_s']:>6.3f}s",
                    file=sys.stderr,
                )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list()
    elif args.command == "topologies":
        _cmd_topologies(args)
    elif args.command == "directories":
        _cmd_directories()
    elif args.command == "engines":
        _cmd_engines()
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "trace-stats":
        _cmd_trace_stats(args)
    elif args.command == "figure":
        _cmd_figure(args)
    elif args.command == "table":
        _cmd_table(args)
    elif args.command == "ablation":
        _cmd_ablation(args)
    elif args.command == "reproduce":
        _cmd_reproduce(args)
    elif args.command == "report":
        _cmd_report(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
