"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the workload suite (Table 3).
``run APP``
    Simulate one application under one or all protocols.
``figure {5,6,7,8,9}``
    Regenerate a paper figure.
``table {1,2,3,4}``
    Regenerate a paper table.
``ablation {relocation,replacement,placement}``
    Run one of the design-choice ablations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.params import (
    base_ccnuma_config,
    base_rnuma_config,
    base_scoma_config,
    ideal_config,
)
from repro.experiments import (
    compute_figure5,
    compute_figure6,
    compute_figure7,
    compute_figure8,
    compute_figure9,
    compute_placement_ablation,
    compute_relocation_ablation,
    compute_replacement_ablation,
    compute_table4,
    format_ablation,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from repro.experiments.runner import ResultCache
from repro.sim.engine import simulate
from repro.workloads.registry import APPLICATIONS, build_program, workload_names

_PROTOCOL_CONFIGS = {
    "ideal": ideal_config,
    "ccnuma": base_ccnuma_config,
    "scoma": base_scoma_config,
    "rnuma": base_rnuma_config,
}

_FIGURES = {
    "5": (compute_figure5, format_figure5),
    "6": (compute_figure6, format_figure6),
    "7": (compute_figure7, format_figure7),
    "8": (compute_figure8, format_figure8),
    "9": (compute_figure9, format_figure9),
}

_ABLATIONS = {
    "relocation": compute_relocation_ablation,
    "replacement": compute_replacement_ablation,
    "placement": compute_placement_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reactive NUMA (ISCA 1997) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the workload suite (Table 3)")

    run_p = sub.add_parser("run", help="simulate one application")
    run_p.add_argument("app", choices=workload_names())
    run_p.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOL_CONFIGS) + ["all"],
        default="all",
    )
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument(
        "--threshold", type=int, default=64, help="R-NUMA relocation threshold"
    )

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("number", choices=sorted(_FIGURES))
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--apps", nargs="*", default=None)

    tab_p = sub.add_parser("table", help="regenerate a paper table")
    tab_p.add_argument("number", choices=["1", "2", "3", "4"])
    tab_p.add_argument("--scale", type=float, default=1.0)

    abl_p = sub.add_parser("ablation", help="run a design-choice ablation")
    abl_p.add_argument("which", choices=sorted(_ABLATIONS))
    abl_p.add_argument("--scale", type=float, default=1.0)
    abl_p.add_argument("--apps", nargs="*", default=None)

    return parser


def _cmd_list() -> None:
    print(f"{'application':<12} {'problem':<42} paper input")
    for name, (_, problem, paper_input) in APPLICATIONS.items():
        print(f"{name:<12} {problem:<42} {paper_input}")


def _cmd_run(args: argparse.Namespace) -> None:
    program = build_program(args.app, scale=args.scale)
    print(f"{args.app}: {program.scaled_input} "
          f"({program.total_accesses} accesses)\n")
    names = (
        list(_PROTOCOL_CONFIGS) if args.protocol == "all" else [args.protocol]
    )
    baseline = None
    for name in names:
        if name == "rnuma":
            config = base_rnuma_config(threshold=args.threshold)
        else:
            config = _PROTOCOL_CONFIGS[name]()
        result = simulate(config, program.traces)
        if baseline is None:
            baseline = result
        print(f"{name:<8} {result.exec_cycles:>12,} cycles "
              f"({result.normalized_to(baseline):.2f}x)  "
              f"refetches={result.total('refetches'):,} "
              f"relocations={result.total('relocations'):,}")


def _cmd_figure(args: argparse.Namespace) -> None:
    compute, render = _FIGURES[args.number]
    result = compute(scale=args.scale, apps=args.apps, cache=ResultCache())
    print(render(result))


def _cmd_table(args: argparse.Namespace) -> None:
    if args.number == "1":
        print(format_table1())
    elif args.number == "2":
        print(format_table2())
    elif args.number == "3":
        print(format_table3(scale=args.scale))
    else:
        print(format_table4(compute_table4(scale=args.scale, cache=ResultCache())))


def _cmd_ablation(args: argparse.Namespace) -> None:
    compute = _ABLATIONS[args.which]
    result = compute(scale=args.scale, apps=args.apps, cache=ResultCache())
    print(format_ablation(result))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list()
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "figure":
        _cmd_figure(args)
    elif args.command == "table":
        _cmd_table(args)
    elif args.command == "ablation":
        _cmd_ablation(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
