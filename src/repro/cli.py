"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the workload suite (Table 3).
``topologies``
    Show the interconnect topologies (links, mean/max hops per size).
``directories``
    Show the directory sharer-set representations and their knobs.
``engines``
    Show the engine backends and whether each can run here.
``run APP``
    Simulate one application under one or all protocols, optionally on
    a non-uniform interconnect topology (``--topology``,
    ``--link-latency``, ``--link-occupancy``), with a scalable
    directory representation (``--directory``, ``--dir-pointers``,
    ``--dir-overflow``, ``--dir-region``), and/or on a non-default
    engine backend (``--engine``).
``trace-stats APP``
    Inspect an application's compiled trace: per-CPU reference counts,
    barriers, pages touched, and the packed-buffer footprint.
``figure {5,6,7,8,9}``
    Regenerate a paper figure.
``table {1,2,3,4}``
    Regenerate a paper table.
``ablation {relocation,replacement,placement}``
    Run one of the design-choice ablations.
``reproduce``
    Regenerate every figure and table (plus the ablations and the
    cluster-size, topology, and directory extensions) in one sweep,
    fanned out over ``--jobs`` worker processes and backed by the
    persistent result store, so a second invocation does near-zero
    simulation work.  ``--heartbeat`` streams per-job progress,
    ``--profile`` breaks down where the wall time went, and a run
    manifest is written next to the stored results.  The sweep is
    fault-tolerant: a crashed, hung, or dependency-starved job is
    retried (``--retries``, ``--job-timeout``, ``--backoff``) and, if
    it permanently fails, recorded in the manifest while the rest of
    the sweep completes (``--keep-going``, the default; ``--fail-fast``
    aborts at the first permanent failure).  A failed sweep exits
    nonzero with a failure table; ``--resume`` re-runs only the
    recorded failures.
``store {verify,gc,stats}``
    Maintain the persistent result store: ``verify`` fscks every entry
    (quarantining corrupt ones), ``gc`` removes stale-schema entries
    and old orphan temp files, ``stats`` summarizes the directory.
``report FILE``
    Summarize a trace (``run --trace``) or metrics (``run --metrics``)
    file; ``--validate`` also checks it against the checked-in schema.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from repro.common.addressing import AddressSpace
from repro.common.errors import ConfigurationError
from repro.common.params import (
    DirectoryParams,
    ObsParams,
    RetryPolicy,
    SystemConfig,
    base_ccnuma_config,
    base_rnuma_config,
    base_scoma_config,
    ideal_config,
    set_default_engine,
)
from repro.experiments import (
    compute_directory_scaling,
    compute_figure5,
    compute_figure6,
    compute_figure7,
    compute_figure8,
    compute_figure9,
    compute_placement_ablation,
    compute_relocation_ablation,
    compute_replacement_ablation,
    compute_scaling,
    compute_table4,
    compute_topology_scaling,
    directory_scaling_jobs,
    figure5_jobs,
    figure6_jobs,
    figure7_jobs,
    figure8_jobs,
    figure9_jobs,
    format_ablation,
    format_directory_scaling,
    format_figure5,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_scaling,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_topology_scaling,
    placement_ablation_jobs,
    relocation_ablation_jobs,
    replacement_ablation_jobs,
    scaling_jobs,
    table4_jobs,
    topology_scaling_jobs,
)
from repro.experiments.executor import (
    TMP_GC_AGE_S,
    Executor,
    JobFailure,
    ResultStore,
    SweepFailure,
    default_store_dir,
    job_from_failure,
)
from repro.experiments.runner import ResultCache
from repro.interconnect.routing import routing_table_for
from repro.interconnect.topology import TOPOLOGIES, topology_names
from repro.sim.engine import simulate
from repro.sim.factory import engine_backends
from repro.workloads.registry import APPLICATIONS, build_program, workload_names

_PROTOCOL_CONFIGS = {
    "ideal": ideal_config,
    "ccnuma": base_ccnuma_config,
    "scoma": base_scoma_config,
    "rnuma": base_rnuma_config,
}

_FIGURES = {
    "5": (figure5_jobs, compute_figure5, format_figure5),
    "6": (figure6_jobs, compute_figure6, format_figure6),
    "7": (figure7_jobs, compute_figure7, format_figure7),
    "8": (figure8_jobs, compute_figure8, format_figure8),
    "9": (figure9_jobs, compute_figure9, format_figure9),
}

_ABLATIONS = {
    "relocation": (relocation_ablation_jobs, compute_relocation_ablation),
    "replacement": (replacement_ablation_jobs, compute_replacement_ablation),
    "placement": (placement_ablation_jobs, compute_placement_ablation),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the simulation fan-out (default: 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "persistent result-store directory (default: "
            "$REPRO_STORE_DIR or ~/.cache/repro-rnuma)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="skip the on-disk result store (in-memory cache only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "re-attempt a crashed or timed-out job up to N more times "
            "with exponential backoff (default: 0)"
        ),
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-job deadline; a job still running past it is reaped "
            "(the worker pool is recycled) and retried or failed"
        ),
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help=(
            "base retry delay, doubled per attempt with deterministic "
            "jitter (default: 0.5)"
        ),
    )
    outcome = parser.add_mutually_exclusive_group()
    outcome.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help=(
            "run every remaining job even after permanent failures, "
            "then exit nonzero with a failure table (default)"
        ),
    )
    outcome.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        help="abort the sweep at the first permanent job failure",
    )
    parser.set_defaults(fail_fast=False)


def _make_executor(args: argparse.Namespace) -> Executor:
    store = None
    if not args.no_store:
        root = Path(args.store) if args.store else default_store_dir()
        try:
            store = ResultStore(root)
        except OSError as exc:
            raise SystemExit(f"repro: cannot use result store {root}: {exc}")
    try:
        retry = RetryPolicy(
            retries=args.retries,
            job_timeout=args.job_timeout,
            backoff=args.backoff,
            fail_fast=args.fail_fast,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"repro: {exc}")
    return Executor(
        workers=args.jobs, cache=ResultCache(), store=store, retry=retry
    )


def _print_failure_table(failures: Sequence[JobFailure]) -> None:
    """The casualty report a failed sweep ends with (stderr)."""
    print(f"\n{len(failures)} job(s) permanently failed:", file=sys.stderr)
    print(
        f"  {'app':<10} {'protocol':<7} {'engine':<12} {'kind':<11} "
        f"{'attempts':>8}  error",
        file=sys.stderr,
    )
    for f in failures:
        print(
            f"  {f.app:<10} {f.protocol:<7} {f.engine:<12} {f.kind:<11} "
            f"{f.attempts:>8}  {f.error}",
            file=sys.stderr,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reactive NUMA (ISCA 1997) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the workload suite (Table 3)")

    topo_p = sub.add_parser(
        "topologies", help="show the interconnect topologies"
    )
    topo_p.add_argument(
        "--nodes",
        type=_positive_int,
        nargs="*",
        default=[4, 8, 16],
        help="node counts to tabulate hop statistics for (default: 4 8 16)",
    )

    run_p = sub.add_parser("run", help="simulate one application")
    run_p.add_argument("app", choices=workload_names())
    run_p.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOL_CONFIGS) + ["all"],
        default="all",
    )
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument(
        "--threshold", type=int, default=64, help="R-NUMA relocation threshold"
    )
    run_p.add_argument(
        "--topology",
        choices=topology_names(),
        default="uniform",
        help="interconnect topology (default: uniform, the paper's fabric)",
    )
    run_p.add_argument(
        "--link-latency",
        type=int,
        default=None,
        metavar="CYCLES",
        help="per-hop link latency on non-uniform topologies",
    )
    run_p.add_argument(
        "--link-occupancy",
        type=int,
        default=None,
        metavar="CYCLES",
        help="per-link busy time on non-uniform topologies",
    )
    run_p.add_argument(
        "--directory",
        choices=DirectoryParams._REPRESENTATIONS,
        default="fullmap",
        help="directory sharer-set representation (default: fullmap, exact)",
    )
    run_p.add_argument(
        "--dir-pointers",
        type=_positive_int,
        default=4,
        metavar="N",
        help="pointer slots for --directory limited (default: 4)",
    )
    run_p.add_argument(
        "--dir-overflow",
        choices=DirectoryParams._OVERFLOW_POLICIES,
        default="broadcast",
        help="limited-pointer overflow policy (default: broadcast)",
    )
    run_p.add_argument(
        "--dir-region",
        type=_positive_int,
        default=4,
        metavar="N",
        help="nodes per bit for --directory coarse (default: 4)",
    )
    run_p.add_argument(
        "--engine",
        choices=SystemConfig._ENGINES,
        default="runahead",
        help="engine backend (default: runahead; vector needs NumPy)",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome-trace-event JSON coherence trace (open in "
            "Perfetto; with --protocol all, one file per protocol with "
            "the protocol name suffixed)"
        ),
    )
    run_p.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "write a JSONL counter time-series (suffixed per protocol "
            "like --trace)"
        ),
    )
    run_p.add_argument(
        "--trace-categories",
        nargs="+",
        choices=ObsParams.TRACE_CATEGORIES,
        default=None,
        metavar="CAT",
        help=(
            "trace event categories to keep (default: all of "
            + " ".join(ObsParams.TRACE_CATEGORIES)
            + ")"
        ),
    )
    run_p.add_argument(
        "--metrics-interval",
        type=_positive_int,
        default=100_000,
        metavar="CYCLES",
        help="simulated cycles between metrics samples (default: 100000)",
    )

    sub.add_parser(
        "directories", help="show the directory sharer-set representations"
    )

    sub.add_parser(
        "engines", help="show the engine backends and their availability"
    )

    ts_p = sub.add_parser(
        "trace-stats", help="inspect an application's compiled trace"
    )
    ts_p.add_argument("app", choices=workload_names())
    ts_p.add_argument("--scale", type=float, default=1.0)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("number", choices=sorted(_FIGURES))
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--apps", nargs="*", default=None)
    _add_executor_args(fig_p)

    tab_p = sub.add_parser("table", help="regenerate a paper table")
    tab_p.add_argument("number", choices=["1", "2", "3", "4"])
    tab_p.add_argument("--scale", type=float, default=1.0)
    _add_executor_args(tab_p)

    abl_p = sub.add_parser("ablation", help="run a design-choice ablation")
    abl_p.add_argument("which", choices=sorted(_ABLATIONS))
    abl_p.add_argument("--scale", type=float, default=1.0)
    abl_p.add_argument("--apps", nargs="*", default=None)
    _add_executor_args(abl_p)

    rep_p = sub.add_parser(
        "reproduce",
        help="regenerate every figure and table in one deduplicated sweep",
    )
    rep_p.add_argument("--scale", type=float, default=1.0)
    rep_p.add_argument("--apps", nargs="*", default=None)
    rep_p.add_argument(
        "--engine",
        choices=SystemConfig._ENGINES,
        default="runahead",
        help=(
            "engine backend for the whole sweep (default: runahead; "
            "backends are bit-identical, so figures and tables do not "
            "change — only wall time and store provenance do)"
        ),
    )
    rep_p.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-time breakdown at the end of the sweep",
    )
    rep_p.add_argument(
        "--heartbeat",
        action="store_true",
        help="stream per-job progress to stderr as the sweep runs",
    )
    rep_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "re-run only the failures recorded in the last sweep's "
            "run manifest (everything else is already stored)"
        ),
    )
    _add_executor_args(rep_p)

    store_p = sub.add_parser(
        "store", help="inspect and maintain the persistent result store"
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)

    def _add_store_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help=(
                "result-store directory (default: $REPRO_STORE_DIR or "
                "~/.cache/repro-rnuma)"
            ),
        )

    verify_p = store_sub.add_parser(
        "verify",
        help=(
            "fsck every entry; corrupt ones are moved to quarantine/ "
            "and the command exits nonzero"
        ),
    )
    _add_store_dir(verify_p)
    verify_p.add_argument(
        "--no-quarantine",
        action="store_true",
        help="report corrupt entries but leave them in place",
    )

    gc_p = store_sub.add_parser(
        "gc",
        help=(
            "remove stale-schema entries and old orphan .tmp files "
            "(fresh ones may belong to a live writer and are kept)"
        ),
    )
    _add_store_dir(gc_p)
    gc_p.add_argument(
        "--tmp-age",
        type=float,
        default=TMP_GC_AGE_S,
        metavar="SECONDS",
        help=(
            "minimum age before an orphan .tmp is considered dead "
            f"(default: {TMP_GC_AGE_S:g})"
        ),
    )

    stats_p = store_sub.add_parser(
        "stats", help="summarize the store directory"
    )
    _add_store_dir(stats_p)

    report_p = sub.add_parser(
        "report", help="summarize a trace or metrics file"
    )
    report_p.add_argument("file", help="a --trace or --metrics output file")
    report_p.add_argument(
        "--validate",
        action="store_true",
        help="also validate the file against its checked-in schema",
    )

    return parser


def _cmd_list() -> None:
    print(f"{'application':<12} {'problem':<42} paper input")
    for name, (_, problem, paper_input) in APPLICATIONS.items():
        print(f"{name:<12} {problem:<42} {paper_input}")


def _cmd_topologies(args: argparse.Namespace) -> None:
    print(f"{'topology':<9} description")
    for name, cls in TOPOLOGIES.items():
        print(f"{name:<9} {cls.description}")
    print()
    header = f"{'topology':<9} {'nodes':>5} {'links':>5} {'mean hops':>9} {'max hops':>8}"
    print(header)
    for name in TOPOLOGIES:
        for nodes in args.nodes:
            table = routing_table_for(name, nodes)
            print(
                f"{name:<9} {nodes:>5} {table.link_count:>5} "
                f"{table.mean_hops():>9.2f} {table.max_hops():>8}"
            )


def _cmd_directories() -> None:
    rows = (
        ("fullmap", "exact bitmask, one bit per node (the seed model)"),
        ("limited", "i owner pointers (--dir-pointers); overflow either "
                    "broadcasts or evicts (--dir-overflow)"),
        ("coarse", "one bit per --dir-region nodes; invalidations hit "
                   "whole regions"),
    )
    print(f"{'representation':<15} behavior")
    for name, text in rows:
        print(f"{name:<15} {text}")


def _cmd_engines() -> None:
    print(f"{'engine':<12} {'requires':<24} {'summary':<50} available")
    for row in engine_backends():
        available = (
            "yes" if row["available"] else f"unavailable — {row['reason']}"
        )
        print(
            f"{row['name']:<12} {row['requires']:<24} "
            f"{row['summary']:<50} {available}"
        )


def _run_config_overrides(args: argparse.Namespace, config):
    """Apply the interconnect/directory knobs of ``run`` to a config."""
    if args.topology != "uniform":
        config = replace(config, topology=args.topology)
    costs = config.costs
    if args.link_latency is not None:
        costs = replace(costs, link_latency=args.link_latency)
    if args.link_occupancy is not None:
        costs = replace(costs, link_occupancy=args.link_occupancy)
    if costs is not config.costs:
        config = replace(config, costs=costs)
    if args.directory != "fullmap":
        config = replace(
            config,
            directory=DirectoryParams(
                representation=args.directory,
                pointers=args.dir_pointers,
                overflow=args.dir_overflow,
                region_size=args.dir_region,
            ),
        )
    if args.engine != config.engine:
        config = replace(config, engine=args.engine)
    return config


def _suffixed_path(path: str, name: str, multi: bool) -> str:
    """``trace.json`` -> ``trace.rnuma.json`` when several protocols
    share one ``--trace``/``--metrics`` flag (each run gets its own
    file; a single-protocol run keeps the path verbatim)."""
    if not multi:
        return path
    p = Path(path)
    return str(p.with_name(f"{p.stem}.{name}{p.suffix}" if p.suffix else f"{p.name}.{name}"))


def _run_obs_params(args: argparse.Namespace, name: str, multi: bool) -> ObsParams:
    """The ObsParams one ``run`` protocol leg should carry."""
    categories = (
        tuple(args.trace_categories)
        if args.trace_categories
        else ObsParams.TRACE_CATEGORIES
    )
    return ObsParams(
        trace_path=(
            _suffixed_path(args.trace, name, multi) if args.trace else None
        ),
        metrics_path=(
            _suffixed_path(args.metrics, name, multi) if args.metrics else None
        ),
        trace_categories=categories,
        metrics_interval=args.metrics_interval,
    )


def _cmd_run(args: argparse.Namespace) -> None:
    program = build_program(args.app, scale=args.scale)
    fabric = "" if args.topology == "uniform" else f" on {args.topology}"
    print(f"{args.app}: {program.scaled_input} "
          f"({program.total_accesses} accesses){fabric}\n")
    names = (
        list(_PROTOCOL_CONFIGS) if args.protocol == "all" else [args.protocol]
    )
    multi = len(names) > 1
    baseline = None
    for name in names:
        if name == "rnuma":
            config = base_rnuma_config(threshold=args.threshold)
        else:
            config = _PROTOCOL_CONFIGS[name]()
        config = _run_config_overrides(args, config)
        obs = _run_obs_params(args, name, multi)
        if obs.enabled:
            config = config.with_obs(obs)
        result = simulate(config, program)
        if baseline is None:
            baseline = result
        print(f"{name:<8} {result.exec_cycles:>12,} cycles "
              f"({result.normalized_to(baseline):.2f}x)  "
              f"refetches={result.total('refetches'):,} "
              f"relocations={result.total('relocations'):,}")
        for label, path in (("trace", obs.trace_path), ("metrics", obs.metrics_path)):
            if path:
                print(f"         {label} -> {path}", file=sys.stderr)


def _cmd_trace_stats(args: argparse.Namespace) -> None:
    """Per-CPU reference counts and the compiled-trace footprint."""
    space = AddressSpace()
    program = build_program(args.app, scale=args.scale)
    pages = program.pages_touched(space)
    runs = program.run_length_stats()
    print(f"{args.app}: {program.scaled_input or program.description}")
    print(f"  cpus            {program.cpu_count}")
    print(f"  accesses        {program.total_accesses:,}")
    print(f"  barriers        {program.barrier_count:,}")
    print(f"  pages touched   {len(pages):,}")
    print(f"  compiled size   {program.nbytes:,} bytes "
          f"(8 bytes/item, columnar)")
    print(f"  barrier-free runs {runs['runs']:,} "
          f"(mean {runs['mean_run_length']:,.0f} refs, "
          f"think {runs['mean_think_cycles']:.1f} cycles/ref)")
    print()
    print(f"  {'cpu':>4} {'references':>12} {'share':>7} {'think/ref':>10}")
    total = program.total_accesses or 1
    profile = program.per_cpu_profile()
    for cpu, count in enumerate(program.access_counts):
        _, think, _ = profile[cpu]
        per_ref = think / count if count else 0.0
        print(f"  {cpu:>4} {count:>12,} {count / total * 100:>6.1f}% "
              f"{per_ref:>10.1f}")


def _cmd_figure(args: argparse.Namespace) -> None:
    _, compute, render = _FIGURES[args.number]
    result = compute(scale=args.scale, apps=args.apps, executor=_make_executor(args))
    print(render(result))


def _cmd_table(args: argparse.Namespace) -> None:
    if args.number == "1":
        print(format_table1())
    elif args.number == "2":
        print(format_table2())
    elif args.number == "3":
        print(format_table3(scale=args.scale))
    else:
        print(
            format_table4(
                compute_table4(scale=args.scale, executor=_make_executor(args))
            )
        )


def _cmd_ablation(args: argparse.Namespace) -> None:
    _, compute = _ABLATIONS[args.which]
    result = compute(scale=args.scale, apps=args.apps, executor=_make_executor(args))
    print(format_ablation(result))


def _cmd_store(args: argparse.Namespace) -> int:
    root = Path(args.store) if args.store else default_store_dir()
    try:
        store = ResultStore(root)
    except OSError as exc:
        raise SystemExit(f"repro: cannot open result store {root}: {exc}")
    if args.store_command == "verify":
        report = store.verify(quarantine=not args.no_quarantine)
        print(f"store: checked {report['checked']} entries under {store.root}")
        print(f"  ok            {report['ok']}")
        print(
            f"  stale schema  {report['stale_schema']}"
            + (" (run `store gc` to remove)" if report["stale_schema"] else "")
        )
        label = "corrupt" if args.no_quarantine else "quarantined"
        print(f"  {label:<13} {len(report['quarantined'])}")
        for item in report["quarantined"]:
            print(f"    {item['entry']}  {item['reason']}")
        return 1 if report["quarantined"] else 0
    if args.store_command == "gc":
        report = store.gc(tmp_max_age_s=args.tmp_age)
        print(
            f"store: removed {report['removed_stale_entries']} stale "
            f"entries and {report['removed_tmp']} orphan tmp files; "
            f"kept {report['kept_live_tmp']} fresh tmp files"
        )
        return 0
    stats = store.stats()
    print(f"store: {stats['root']} (schema v{stats['schema_version']})")
    print(f"  entries      {stats['entries']} ({stats['total_bytes']:,} bytes)")
    for version, count in sorted(stats["schema_versions"].items()):
        print(f"    schema {version:<8} {count}")
    print(f"  tmp files    {stats['tmp_files']}")
    print(f"  quarantined  {stats['quarantined']}")
    print(f"  manifest     {'yes' if stats['has_manifest'] else 'no'}")
    return 0


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.obs.report import report

    try:
        summary, errors = report(args.file, check=args.validate)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"repro: cannot report on {args.file}: {exc}")
    print(summary)
    if args.validate:
        if errors:
            print(f"\nschema violations ({len(errors)}):", file=sys.stderr)
            for error in errors[:20]:
                print(f"  {error}", file=sys.stderr)
            raise SystemExit(1)
        print("\nschema: valid")


def _resume_reproduce(args: argparse.Namespace, executor: Executor) -> int:
    """``reproduce --resume``: re-run only the failures the last
    sweep's manifest recorded — everything that succeeded is already in
    the store, so there is nothing else to do."""
    if executor.store is None:
        raise SystemExit(
            "repro: --resume needs the on-disk store (drop --no-store)"
        )
    manifest = executor.store.read_manifest()
    if manifest is None:
        raise SystemExit(
            f"repro: --resume found no run manifest under "
            f"{executor.store.root}; run `python -m repro reproduce` first"
        )
    records = [
        JobFailure.from_json_dict(f) for f in manifest.get("failures", [])
    ]
    if not records:
        print(
            "reproduce: manifest records no failures; nothing to resume",
            file=sys.stderr,
        )
        return 0
    jobs = [job_from_failure(f) for f in records]
    print(f"reproduce: resuming {len(jobs)} failed job(s)", file=sys.stderr)
    failures: List[JobFailure] = []
    try:
        executor.run(jobs)
    except SweepFailure as exc:
        failures = exc.failures
    manifest["failures"] = [f.to_json_dict() for f in failures]
    executor.store.write_manifest_payload(manifest)
    print(
        f"reproduce: {len(jobs) - len(failures)} job(s) recovered, "
        f"{len(failures)} still failing",
        file=sys.stderr,
    )
    if failures:
        _print_failure_table(failures)
        return 1
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Full paper sweep: one deduplicated job set, one executor."""
    import time

    # The figure/table modules build their SystemConfigs internally, so
    # the backend choice rides on the process-wide default: every config
    # constructed below (including by the render-phase compute calls)
    # resolves it at construction into a concrete ``engine`` field,
    # which then travels to worker processes inside the pickled config.
    set_default_engine(args.engine)

    executor = _make_executor(args)
    if args.heartbeat:
        start = time.perf_counter()

        def _heartbeat(done: int, total: int, job, source: str) -> None:
            elapsed = time.perf_counter() - start
            print(
                f"  [{done:>4}/{total}] {elapsed:>7.1f}s "
                f"{job.app:<10} {job.config.protocol:<7} {source}",
                file=sys.stderr,
            )

        executor.progress = _heartbeat
    if args.resume:
        return _resume_reproduce(args, executor)
    scale, apps = args.scale, args.apps

    # Enumerate every figure/table/ablation/extension simulation up
    # front so overlapping configurations are submitted exactly once.
    jobs = []
    for jobs_fn, _, _ in _FIGURES.values():
        jobs += jobs_fn(scale, apps)
    jobs += table4_jobs(scale, apps)
    for jobs_fn, _ in _ABLATIONS.values():
        jobs += jobs_fn(scale, apps)
    jobs += scaling_jobs(scale, apps)
    jobs += topology_scaling_jobs(scale, apps)
    jobs += directory_scaling_jobs(scale, apps)
    unique = len({job.key for job in jobs})
    print(
        f"reproduce: {len(jobs)} simulations, {unique} unique after "
        f"dedup, {args.jobs} worker(s)"
        + ("" if executor.store is None else f", store={executor.store.root}"),
        file=sys.stderr,
    )

    # Phase 1 — trace compile: warm the registry's compiled-program
    # cache (generation, packing, placement) so the simulate phase
    # measures simulation.  Only for jobs the cache/store cannot
    # satisfy — a warm-store rerun must stay trace-generation-free.
    t0 = time.perf_counter()
    pending = executor.missing(jobs)
    for app, machine, space in sorted(
        {(job.app, job.config.machine, job.config.space) for job in pending},
        key=lambda k: k[0],
    ):
        build_program(app, machine=machine, space=space, scale=scale)
    compile_s = time.perf_counter() - t0 - executor.store_seconds
    store_baseline = executor.store_seconds

    # Phase 2 — simulate (store I/O tracked separately by the executor).
    # A SweepFailure here means some jobs are permanently dead after
    # their retry budget; everything else completed (keep-going) and is
    # cached/stored, so rendering proceeds on the survivors.
    t0 = time.perf_counter()
    failures: List[JobFailure] = []
    try:
        executor.run(jobs)
    except SweepFailure as exc:
        failures = exc.failures
    simulate_s = time.perf_counter() - t0 - (
        executor.store_seconds - store_baseline
    )
    store_after_simulate = executor.store_seconds

    # Phase 3 — render.  All compute calls hit the warm executor; a
    # section whose job set includes a permanently failed key is
    # replaced with a skip marker instead of re-simulating a known-bad
    # job (or crashing the report).
    failed_keys = executor.failed_keys

    def _section(label: str, render_fn, section_jobs=None) -> str:
        if section_jobs is not None and failed_keys:
            blocked = {repr(j.key) for j in section_jobs} & failed_keys
            if blocked:
                return (
                    f"{label}: skipped — {len(blocked)} required job(s) "
                    "permanently failed (see failure table)"
                )
        try:
            return render_fn()
        except SweepFailure as exc:
            return (
                f"{label}: skipped — {len(exc.failures)} required job(s) "
                "permanently failed (see failure table)"
            )

    t0 = time.perf_counter()
    sections = [format_table1(), format_table2(), format_table3(scale=scale)]
    for number in sorted(_FIGURES):
        jobs_fn, compute, render = _FIGURES[number]
        sections.append(
            _section(
                f"Figure {number}",
                lambda compute=compute, render=render: render(
                    compute(scale=scale, apps=apps, executor=executor)
                ),
                jobs_fn(scale, apps),
            )
        )
    sections.append(
        _section(
            "Table 4",
            lambda: format_table4(
                compute_table4(scale=scale, apps=apps, executor=executor)
            ),
            table4_jobs(scale, apps),
        )
    )
    for which in sorted(_ABLATIONS):
        jobs_fn, compute = _ABLATIONS[which]
        sections.append(
            _section(
                f"Ablation: {which}",
                lambda compute=compute: format_ablation(
                    compute(scale=scale, apps=apps, executor=executor)
                ),
                jobs_fn(scale, apps),
            )
        )
    sections.append(
        _section(
            "Extension: cluster-size",
            lambda: format_scaling(
                compute_scaling(scale=scale, apps=apps, executor=executor)
            ),
            scaling_jobs(scale, apps),
        )
    )
    sections.append(
        _section(
            "Extension: topology",
            lambda: format_topology_scaling(
                compute_topology_scaling(scale=scale, apps=apps, executor=executor)
            ),
            topology_scaling_jobs(scale, apps),
        )
    )
    sections.append(
        _section(
            "Extension: directory",
            lambda: format_directory_scaling(
                compute_directory_scaling(scale=scale, apps=apps, executor=executor)
            ),
            directory_scaling_jobs(scale, apps),
        )
    )
    print("\n\n".join(sections))
    # Render-phase cache misses may hit the store too; keep that I/O in
    # the store row, not the render row.
    store_s = executor.store_seconds
    render_s = time.perf_counter() - t0 - (store_s - store_after_simulate)

    manifest = executor.write_manifest(
        jobs, extra={"command": "reproduce", "scale": scale}
    )
    if manifest is not None:
        print(f"reproduce: manifest -> {manifest}", file=sys.stderr)

    if args.profile:
        total = compile_s + simulate_s + store_s + render_s
        print("\nphase breakdown", file=sys.stderr)
        for name, seconds in (
            ("trace compile", compile_s),
            ("simulate", simulate_s),
            ("store read", executor.store_read_seconds),
            ("store write", executor.store_write_seconds),
            ("render", render_s),
        ):
            share = seconds / total * 100 if total else 0.0
            print(f"  {name:<14} {seconds:>8.2f}s {share:>5.1f}%", file=sys.stderr)
        simulated = [
            p for p in executor.job_profiles if p["source"] == "simulated"
        ]
        if simulated:
            slowest = sorted(
                simulated, key=lambda p: p["simulate_s"], reverse=True
            )[:5]
            print(
                f"\nslowest jobs ({len(simulated)} simulated; "
                "queue = wait for a worker)",
                file=sys.stderr,
            )
            for p in slowest:
                print(
                    f"  {p['app']:<10} {p['protocol']:<7} "
                    f"sim {p['simulate_s']:>7.2f}s  "
                    f"queue {p['queue_wait_s']:>6.2f}s  "
                    f"store {p['store_read_s'] + p['store_write_s']:>6.3f}s",
                    file=sys.stderr,
                )

    if failures:
        _print_failure_table(failures)
        hint = (
            "; re-run only the failed jobs with "
            "`python -m repro reproduce --resume`"
            if executor.store is not None
            else ""
        )
        print(f"reproduce: partial results kept{hint}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rc = 0
    try:
        if args.command == "list":
            _cmd_list()
        elif args.command == "topologies":
            _cmd_topologies(args)
        elif args.command == "directories":
            _cmd_directories()
        elif args.command == "engines":
            _cmd_engines()
        elif args.command == "run":
            _cmd_run(args)
        elif args.command == "trace-stats":
            _cmd_trace_stats(args)
        elif args.command == "figure":
            _cmd_figure(args)
        elif args.command == "table":
            _cmd_table(args)
        elif args.command == "ablation":
            _cmd_ablation(args)
        elif args.command == "reproduce":
            rc = _cmd_reproduce(args)
        elif args.command == "store":
            rc = _cmd_store(args)
        elif args.command == "report":
            _cmd_report(args)
    except SweepFailure as exc:
        # figure/table/ablation sweeps propagate permanent job
        # failures here; reproduce handles its own (partial render).
        _print_failure_table(exc.failures)
        return 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
